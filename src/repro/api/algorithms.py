"""Built-in registrations: every algorithm the reproduction ships.

Importing this module (which :mod:`repro.api` and the batch runner both
do) populates the registry with the paper's algorithms, the folklore
baselines of Table 1, and the exact/greedy references.  The table:

=================  =======  ===============  ==========================
name               problem  modes            guarantee
=================  =======  ===============  ==========================
algorithm1         mds      fast, simulate   50 (Thm 4.1)
algorithm2         mds      fast, simulate   25(d+1)+1 (Thm 4.3)
d2                 mds      fast             2t-1 (Thm 4.4)
degree_two         mds      fast             3 on trees (folklore)
take_all           mds      fast             t on K_{1,t}-free
greedy             mds      fast             ln(Delta) (distributed)
greedy_central     mds      fast             ln(Delta) (centralized)
exact              mds      fast             1 (full gather)
local_cuts_vc      mvc      fast, simulate   O_t(1) (Thm 4.1 variant)
d2_vc              mvc      fast             t (Thm 4.4 variant)
matching_vc        mvc      fast             2 (maximal matching)
exact_vc           mvc      fast             1 (full gather)
=================  =======  ===============  ==========================

Algorithms whose systems-style per-node protocol ships in
:mod:`repro.local_model.protocols` / :mod:`repro.core.distributed_greedy`
additionally register a ``protocol_factory``, which makes them runnable
on the simulation engine through :func:`repro.api.simulate`
(``d2``, ``degree_two``, ``take_all``, ``greedy``).
"""

from __future__ import annotations

import networkx as nx

from repro.api.config import RunConfig
from repro.api.registry import register_algorithm
from repro.core.algorithm1 import algorithm1
from repro.core.baselines import (
    degree_two_dominating_set,
    full_gather_exact,
    take_all_vertices,
)
from repro.core.d2 import d2_dominating_set
from repro.core.distributed_greedy import (
    DistributedGreedyProtocolFull,
    distributed_greedy_dominating_set,
)
from repro.core.radii import RadiusPolicy
from repro.core.results import AlgorithmResult
from repro.core.vertex_cover import d2_vertex_cover, local_cuts_vertex_cover
from repro.local_model.protocols import (
    D2Protocol,
    DegreeTwoProtocol,
    TakeAllProtocol,
)
from repro.solvers.greedy import greedy_dominating_set
from repro.solvers.vc import matching_vertex_cover, minimum_vertex_cover


def _protocol(cls):
    """Engine factory for graph/spec-independent per-node protocols."""

    def build(graph, spec):
        return cls

    return build


def _graph_diameter(graph: nx.Graph) -> int:
    return max(
        nx.diameter(graph.subgraph(c)) for c in nx.connected_components(graph)
    )


@register_algorithm(
    name="algorithm1",
    problem="mds",
    summary="Theorem 4.1: constant-approximation LOCAL MDS via local cuts",
    modes=("fast", "simulate"),
    default_policy=RadiusPolicy.practical,
    assumes="K_{2,t}-minor-free",
    guarantee="50",
    round_complexity="O_t(1)",
    tags=("paper",),
)
def _run_algorithm1(graph: nx.Graph, config: RunConfig) -> AlgorithmResult:
    policy = config.policy or RadiusPolicy.practical()
    return algorithm1(graph, policy, mode=config.mode)


@register_algorithm(
    name="algorithm2",
    problem="mds",
    summary="Theorem 4.3: the asymptotic-dimension parameterisation",
    modes=("fast", "simulate"),
    default_policy=RadiusPolicy.practical,
    assumes="asymptotic dimension d with control f",
    guarantee="25(d+1)+1",
    round_complexity="O_{t,f}(1)",
    tags=("paper",),
)
def _run_algorithm2(graph: nx.Graph, config: RunConfig) -> AlgorithmResult:
    # Same pipeline as Algorithm 1 under an asdim-derived policy (see
    # repro.core.algorithm2).  The default is the practical preset; pass
    # config.policy = RadiusPolicy.from_asdim(d, f) for the real radii.
    policy = config.policy or RadiusPolicy.practical()
    result = algorithm1(graph, policy, mode=config.mode)
    result.name = "algorithm2"
    result.metadata["dimension"] = policy.dimension
    return result


@register_algorithm(
    name="d2",
    problem="mds",
    summary="Theorem 4.4: the 3-round D2 rule on the twin-free graph",
    assumes="K_{2,t}-minor-free",
    guarantee="2t-1",
    round_complexity="3",
    protocol_factory=_protocol(D2Protocol),
    tags=("paper",),
)
def _run_d2(graph: nx.Graph, config: RunConfig) -> AlgorithmResult:
    return d2_dominating_set(graph)


@register_algorithm(
    name="degree_two",
    problem="mds",
    summary="folklore tree rule: take every vertex of degree >= 2",
    assumes="trees",
    guarantee="3",
    round_complexity="2",
    protocol_factory=_protocol(DegreeTwoProtocol),
    tags=("baseline",),
)
def _run_degree_two(graph: nx.Graph, config: RunConfig) -> AlgorithmResult:
    return degree_two_dominating_set(graph)


@register_algorithm(
    name="take_all",
    problem="mds",
    summary="0-round baseline: every vertex joins",
    assumes="K_{1,t}-minor-free",
    guarantee="t",
    round_complexity="0",
    protocol_factory=_protocol(TakeAllProtocol),
    tags=("baseline",),
)
def _run_take_all(graph: nx.Graph, config: RunConfig) -> AlgorithmResult:
    return take_all_vertices(graph)


@register_algorithm(
    name="greedy",
    problem="mds",
    summary="distributed locally-maximal greedy (non-constant rounds)",
    guarantee="ln(Delta)",
    round_complexity="O(phases)",
    protocol_factory=_protocol(DistributedGreedyProtocolFull),
    tags=("reference",),
)
def _run_greedy(graph: nx.Graph, config: RunConfig) -> AlgorithmResult:
    return distributed_greedy_dominating_set(graph)


@register_algorithm(
    name="greedy_central",
    problem="mds",
    summary="centralized sequential greedy (set-cover classic)",
    guarantee="ln(Delta)",
    round_complexity="global",
    tags=("reference",),
)
def _run_greedy_central(graph: nx.Graph, config: RunConfig) -> AlgorithmResult:
    solution = greedy_dominating_set(graph)
    return AlgorithmResult(
        name="greedy_central", solution=solution, rounds=len(solution),
        phases={"greedy": set(solution)},
    )


@register_algorithm(
    name="exact",
    problem="mds",
    summary="full gather + exact MDS (footnote 2; solver per config)",
    guarantee="1",
    round_complexity="diam(G)+1",
    tags=("reference",),
)
def _run_exact(graph: nx.Graph, config: RunConfig) -> AlgorithmResult:
    return full_gather_exact(graph, solver=config.solver, use_cache=config.opt_cache)


@register_algorithm(
    name="local_cuts_vc",
    problem="mvc",
    summary="Theorem 4.1 MVC variant: all local 2-cut vertices, then brute",
    modes=("fast", "simulate"),
    default_policy=RadiusPolicy.practical,
    assumes="K_{2,t}-minor-free",
    guarantee="O_t(1)",
    round_complexity="O_t(1)",
    tags=("paper",),
)
def _run_local_cuts_vc(graph: nx.Graph, config: RunConfig) -> AlgorithmResult:
    policy = config.policy or RadiusPolicy.practical()
    return local_cuts_vertex_cover(graph, policy, mode=config.mode)


@register_algorithm(
    name="d2_vc",
    problem="mvc",
    summary="Theorem 4.4 MVC variant: twins + D2 + bare-edge patch",
    assumes="K_{2,t}-minor-free",
    guarantee="t",
    round_complexity="4",
    tags=("paper",),
)
def _run_d2_vc(graph: nx.Graph, config: RunConfig) -> AlgorithmResult:
    return d2_vertex_cover(graph)


@register_algorithm(
    name="matching_vc",
    problem="mvc",
    summary="maximal-matching 2-approximation (classical baseline)",
    guarantee="2",
    round_complexity="O(log n)",
    tags=("baseline",),
)
def _run_matching_vc(graph: nx.Graph, config: RunConfig) -> AlgorithmResult:
    solution = matching_vertex_cover(graph)
    return AlgorithmResult(
        name="matching_vc", solution=set(solution), rounds=1,
        phases={"matching": set(solution)},
    )


@register_algorithm(
    name="exact_vc",
    problem="mvc",
    summary="full gather + exact MVC (MILP)",
    guarantee="1",
    round_complexity="diam(G)+1",
    tags=("reference",),
)
def _run_exact_vc(graph: nx.Graph, config: RunConfig) -> AlgorithmResult:
    if graph.number_of_edges() == 0:
        return AlgorithmResult(name="exact_vc", solution=set(), rounds=0)
    diameter = _graph_diameter(graph)
    solution = minimum_vertex_cover(graph)
    return AlgorithmResult(
        name="exact_vc",
        solution=solution,
        rounds=diameter + 1,
        phases={"exact": set(solution)},
        metadata={"diameter": diameter},
    )
