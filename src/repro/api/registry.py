"""The global algorithm registry behind :mod:`repro.api`.

Every MDS/MVC algorithm the reproduction ships registers an
:class:`AlgorithmSpec` here — name, problem kind, supported execution
modes, graph-class assumption, paper guarantee, and a uniform
``run(graph, config)`` adapter.  All consumers (CLI choices, the batch
runner, Table 1, benchmarks) discover algorithms through this registry,
so a new algorithm registers once and appears everywhere.

Register with the decorator::

    @register_algorithm(
        name="my_alg",
        problem="mds",
        summary="my 7-approximation",
        modes=("fast",),
    )
    def _run_my_alg(graph, config):
        return my_alg(graph)

The adapter receives the full :class:`~repro.api.config.RunConfig`; it
should honor ``config.policy`` and ``config.mode`` when the algorithm
supports them and ignore the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import networkx as nx

from repro.api.config import RunConfig
from repro.core.radii import RadiusPolicy
from repro.core.results import AlgorithmResult

PROBLEMS = ("mds", "mvc")

Adapter = Callable[[nx.Graph, RunConfig], AlgorithmResult]


class UnknownAlgorithmError(KeyError):
    """Lookup of a name no algorithm registered."""

    def __str__(self) -> str:
        # KeyError.__str__ repr-quotes the message; keep it readable.
        return self.args[0] if self.args else ""


class UnsupportedModeError(ValueError):
    """An execution mode the algorithm does not support was requested."""


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm: identity, capabilities, and adapter."""

    name: str
    problem: str
    """``"mds"`` (dominating set) or ``"mvc"`` (vertex cover)."""
    summary: str
    run: Adapter
    modes: tuple[str, ...] = ("fast",)
    """Execution modes the algorithm supports (``fast``/``simulate``)."""
    default_policy: Callable[[], RadiusPolicy] | None = None
    """Factory for the policy used when ``config.policy`` is ``None``
    (``None`` for policy-oblivious algorithms)."""
    assumes: str = "any graph"
    """Graph-class assumption under which the guarantee holds."""
    guarantee: str = "-"
    """The paper's approximation guarantee (display string)."""
    round_complexity: str = "-"
    """The paper's round count (display string)."""
    protocol_factory: Callable | None = None
    """Build a per-node protocol for the simulation engine:
    ``protocol_factory(graph, spec) -> Callable[[], LocalAlgorithm]``
    where ``spec`` is the :class:`repro.api.SimulationSpec` of the run.
    ``None`` means the algorithm ships no true message-passing protocol
    and :func:`repro.api.simulate` rejects it."""
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.problem not in PROBLEMS:
            raise ValueError(f"unknown problem {self.problem!r}; choose from {PROBLEMS}")
        if not self.modes or any(m not in ("fast", "simulate") for m in self.modes):
            raise ValueError(f"invalid modes {self.modes!r}")

    @property
    def supports_simulation(self) -> bool:
        return "simulate" in self.modes

    @property
    def supports_engine(self) -> bool:
        """Whether :func:`repro.api.simulate` can run this algorithm as
        a true per-node message-passing protocol."""
        return self.protocol_factory is not None

    def check_engine(self) -> None:
        """Raise :class:`UnsupportedModeError` without a protocol."""
        if self.protocol_factory is None:
            raise UnsupportedModeError(
                f"algorithm {self.name!r} ships no message-passing protocol "
                f"for the simulation engine (engine-capable algorithms: "
                f"{', '.join(engine_algorithm_names()) or 'none'})"
            )

    def policy_for(self, config: RunConfig) -> RadiusPolicy | None:
        """The policy this run should use (config override, else default)."""
        if config.policy is not None:
            return config.policy
        return self.default_policy() if self.default_policy is not None else None

    def check_mode(self, mode: str) -> None:
        """Raise :class:`UnsupportedModeError` unless ``mode`` is supported."""
        if mode not in self.modes:
            supported = "/".join(self.modes)
            raise UnsupportedModeError(
                f"algorithm {self.name!r} does not support mode {mode!r} "
                f"(supported: {supported})"
            )

    def describe(self) -> dict:
        """JSON-ready capability record (the `repro algorithms` payload)."""
        return {
            "name": self.name,
            "problem": self.problem,
            "modes": list(self.modes),
            "engine": self.supports_engine,
            "assumes": self.assumes,
            "guarantee": self.guarantee,
            "rounds": self.round_complexity,
            "default_policy": (
                self.default_policy().label if self.default_policy is not None else None
            ),
            "summary": self.summary,
        }


_REGISTRY: dict[str, AlgorithmSpec] = {}


def register_algorithm(
    *,
    name: str,
    problem: str,
    summary: str,
    modes: tuple[str, ...] = ("fast",),
    default_policy: Callable[[], RadiusPolicy] | None = None,
    assumes: str = "any graph",
    guarantee: str = "-",
    round_complexity: str = "-",
    protocol_factory: Callable | None = None,
    tags: tuple[str, ...] = (),
) -> Callable[[Adapter], Adapter]:
    """Decorator registering ``fn(graph, config) -> AlgorithmResult``."""

    def decorate(fn: Adapter) -> Adapter:
        spec = AlgorithmSpec(
            name=name,
            problem=problem,
            summary=summary,
            run=fn,
            modes=tuple(modes),
            default_policy=default_policy,
            assumes=assumes,
            guarantee=guarantee,
            round_complexity=round_complexity,
            protocol_factory=protocol_factory,
            tags=tuple(tags),
        )
        if name in _REGISTRY:
            raise ValueError(f"algorithm {name!r} already registered")
        _REGISTRY[name] = spec
        return fn

    return decorate


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm, with a helpful error on typos."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; known: {known}"
        ) from None


def list_algorithms(problem: str | None = None) -> list[AlgorithmSpec]:
    """All registered specs (optionally one problem kind), sorted by name."""
    if problem is not None and problem not in PROBLEMS:
        raise ValueError(f"unknown problem {problem!r}; choose from {PROBLEMS}")
    return sorted(
        (s for s in _REGISTRY.values() if problem is None or s.problem == problem),
        key=lambda s: s.name,
    )


def algorithm_names(problem: str | None = None) -> list[str]:
    """Registered names (optionally one problem kind), sorted."""
    return [spec.name for spec in list_algorithms(problem)]


def engine_algorithm_names(problem: str | None = None) -> list[str]:
    """Names of algorithms runnable on the simulation engine, sorted."""
    return [
        spec.name for spec in list_algorithms(problem) if spec.supports_engine
    ]
