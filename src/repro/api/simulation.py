"""`simulate` / `simulate_many`: the front door to the simulation engine.

The distributed counterpart of :func:`repro.api.solve`: a
:class:`SimulationSpec` says *how* to execute one registered algorithm's
message-passing protocol (round model, CONGEST budget, round limit,
trace policy, RNG seed, fault plan, identifier scheme); a
:class:`SimReport` says *what happened* (per-vertex outputs, round and
message totals, drops, crashes).  Both are plain picklable dataclasses,
round-trip through JSON via :func:`repro.io.sim_report_to_dict` /
:func:`repro.io.sim_report_from_dict`, and :func:`simulate_many` fans
``instances × specs`` out over the same process-parallel,
order-deterministic machinery as :func:`repro.api.solve_many`.

Reports carry **no wall-clock fields** — everything in a
:class:`SimReport` is a pure function of (graph, spec), so a
``workers=4`` batch serialises byte-identically to the serial run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Hashable, Iterable, Sequence

import networkx as nx

import repro.api.algorithms  # noqa: F401  (populates the registry)
from repro.api.config import instance_meta, measured_ratio
from repro.api.registry import AlgorithmSpec, get_algorithm
from repro.api.runner import _normalise_instances
from repro.local_model.adversary import (
    ByzantinePlan,
    ChurnPlan,
    churned_graph,
    materialize_churn,
)
from repro.local_model.engine import (
    MODELS,
    TRACE_POLICIES,
    FaultPlan,
    SimulationEngine,
    scheduler_for,
)
from repro.local_model.identifiers import identity_ids, shuffled_ids, spread_ids
from repro.local_model.instrumentation import RoundStats
from repro.local_model.network import Network

Vertex = Hashable

ID_SCHEMES = ("identity", "shuffled", "spread")


@dataclass(frozen=True)
class SimulationSpec:
    """How to execute one algorithm on the simulation engine.

    * ``algorithm`` — a registered algorithm with a message-passing
      protocol (see ``repro algorithms``; the registry rejects the
      rest);
    * ``model`` — ``"local"`` (unbounded messages) or ``"congest"``
      (each message capped at ``budget`` identifier units);
    * ``budget`` — the CONGEST cap in identifier units per message
      (ignored under ``model="local"``);
    * ``max_rounds`` — the round limit; exceeding it raises instead of
      hanging;
    * ``trace`` — ``"full"`` (per-round stats), ``"stats"`` (aggregate
      totals only), or ``"off"`` (no accounting at all), so large
      sweeps need not hold per-round traces in memory;
    * ``seed`` — drives the fault RNG and the ``"shuffled"`` identifier
      scheme; recorded for provenance;
    * ``faults`` — optional :class:`~repro.local_model.engine.FaultPlan`
      (message drop probability, crashed nodes, scheduled crashes);
    * ``ids`` — identifier assignment scheme: ``"identity"``,
      ``"shuffled"`` (seeded by ``seed``), or ``"spread"``;
    * ``churn`` — optional
      :class:`~repro.local_model.adversary.ChurnPlan`: the topology
      changes between rounds (the input graph is copied, never
      mutated);
    * ``byzantine`` — optional
      :class:`~repro.local_model.adversary.ByzantinePlan`: which nodes
      misbehave, and how;
    * ``delay`` — per-message delay bound for the ``"async"`` and
      ``"adversarial"`` models (ignored by LOCAL/CONGEST).

    Leaving ``churn``/``byzantine`` unset (or trivial) and the model at
    LOCAL/CONGEST reproduces pre-adversarial reports byte-identically.
    """

    algorithm: str
    model: str = "local"
    budget: int = 4
    max_rounds: int = 10_000
    trace: str = "stats"
    seed: int = 0
    faults: FaultPlan | None = None
    ids: str = "identity"
    churn: ChurnPlan | None = None
    byzantine: ByzantinePlan | None = None
    delay: int = 2

    def __post_init__(self) -> None:
        if self.model not in MODELS:
            raise ValueError(f"unknown model {self.model!r}; choose from {MODELS}")
        if self.trace not in TRACE_POLICIES:
            raise ValueError(
                f"unknown trace policy {self.trace!r}; choose from {TRACE_POLICIES}"
            )
        if self.budget < 1:
            raise ValueError("budget must allow at least one identifier")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be positive")
        if self.ids not in ID_SCHEMES:
            raise ValueError(
                f"unknown identifier scheme {self.ids!r}; choose from {ID_SCHEMES}"
            )
        if self.churn is not None and not isinstance(self.churn, ChurnPlan):
            raise ValueError(f"churn must be a ChurnPlan, got {self.churn!r}")
        if self.byzantine is not None and not isinstance(self.byzantine, ByzantinePlan):
            raise ValueError(
                f"byzantine must be a ByzantinePlan, got {self.byzantine!r}"
            )
        if self.delay < 0:
            raise ValueError(f"delay bound must be >= 0, got {self.delay}")

    def with_(self, **changes: object) -> "SimulationSpec":
        """A copy with the given fields replaced (frozen-dataclass update)."""
        return replace(self, **changes)


@dataclass
class SimReport:
    """Everything one :func:`simulate` call produced.

    ``outputs`` is keyed by graph vertex (simulator bookkeeping labels),
    so reports are comparable across identifier schemes; crashed nodes
    never halt and are absent.  ``round_stats`` is ``None`` unless the
    spec asked for ``trace="full"``; under ``trace="off"`` the
    message/payload totals stay zero.
    """

    algorithm: str
    problem: str
    model: str
    instance: dict = field(default_factory=dict)
    spec: SimulationSpec | None = None
    outputs: dict = field(default_factory=dict)
    rounds: int = 0
    total_messages: int = 0
    total_payload: int = 0
    dropped_messages: int = 0
    """Messages lost to the fault plan's ``drop_probability`` RNG."""
    swallowed_messages: int = 0
    """Messages addressed to crashed nodes, or caught queued in a node
    by a scheduled crash (never delivered)."""
    crashed: tuple = ()
    round_stats: list[RoundStats] | None = None
    delayed_messages: int = 0
    """Messages the async/adversarial scheduler held >= 1 round."""
    churn_events: int = 0
    """Topology-change events applied during the run."""
    churn_lost_messages: int = 0
    """In-flight messages invalidated by churn."""
    suspicion: dict = field(default_factory=dict)
    """Per-Byzantine-vertex accountability tallies
    (``behavior``/``deviations``/``detections``)."""
    failed: tuple = ()
    """Vertices whose protocol raised under adversarial conditions."""
    timed_out: bool = False
    """An adversarial run hit ``max_rounds`` before honest nodes halted
    (non-termination under attack is a result, not an error)."""

    @property
    def chosen(self) -> set:
        """Vertices whose output is exactly ``True`` — the solution set
        of membership protocols (D2, degree rule, greedy, take-all)."""
        return {v for v, output in self.outputs.items() if output is True}

    @property
    def halted(self) -> int:
        """How many nodes produced an output."""
        return len(self.outputs)


def _make_ids(graph: nx.Graph, spec: SimulationSpec) -> dict:
    if spec.ids == "shuffled":
        return shuffled_ids(graph, spec.seed)
    if spec.ids == "spread":
        return spread_ids(graph)
    return identity_ids(graph)


def _as_spec(spec: SimulationSpec | str) -> SimulationSpec:
    return SimulationSpec(algorithm=spec) if isinstance(spec, str) else spec


def _engine_spec(spec: SimulationSpec) -> AlgorithmSpec:
    """Resolve + capability-check the registered algorithm."""
    alg = get_algorithm(spec.algorithm)
    alg.check_engine()
    return alg


def simulate(
    graph: nx.Graph,
    spec: SimulationSpec | str,
    *,
    meta: dict | None = None,
) -> SimReport:
    """Run one registered algorithm's protocol on the simulation engine.

    ``spec`` may be a bare algorithm name (shorthand for
    ``SimulationSpec(algorithm=name)``).  Raises
    :class:`~repro.api.registry.UnknownAlgorithmError` on a bad name,
    :class:`~repro.api.registry.UnsupportedModeError` when the algorithm
    ships no protocol, and
    :class:`~repro.local_model.engine.MessageTooLargeError` (with round
    and receiver) when ``model="congest"`` rejects a message.

    The zero-node graph is handled without a network: the report is
    empty with zero rounds.
    """
    spec = _as_spec(spec)
    alg = _engine_spec(spec)
    base = SimReport(
        algorithm=alg.name,
        problem=alg.problem,
        model=spec.model,
        instance=instance_meta(graph, meta),
        spec=spec,
        crashed=tuple(spec.faults.crashed) if spec.faults else (),
        round_stats=[] if spec.trace == "full" else None,
    )
    if graph.number_of_nodes() == 0:
        # The engine owns crash-vertex validation; match its contract
        # here, where no engine is ever constructed.
        if spec.faults is not None and spec.faults.crashed:
            raise ValueError(
                f"crashed vertices not in the network: {list(spec.faults.crashed)!r}"
            )
        return base

    churn_plan = spec.churn if spec.churn is not None and not spec.churn.is_trivial else None
    if churn_plan is not None and not isinstance(graph, nx.Graph):
        # KernelView instances are immutable CSR facades; churn needs a
        # mutable nx.Graph to apply join/leave/rewire events to.
        raise TypeError(
            "churn plans require a mutable nx.Graph instance; "
            f"got {type(graph).__name__} (rebuild the instance as a graph, "
            "e.g. via graph_from_wire, to simulate churn)"
        )
    byz_plan = (
        spec.byzantine
        if spec.byzantine is not None and not spec.byzantine.is_trivial
        else None
    )
    churn_rounds = None
    if churn_plan is not None:
        # Materialize against the caller's graph, then run on a copy —
        # churn mutates the engine-side topology, never the input.
        churn_rounds = materialize_churn(churn_plan, graph, spec.seed)
        graph = graph.copy()
    network = Network(graph, _make_ids(graph, spec))
    engine = SimulationEngine(
        network,
        scheduler_for(spec.model, spec.budget, delay=spec.delay, seed=spec.seed),
        max_rounds=spec.max_rounds,
        faults=spec.faults,
        trace=spec.trace,
        seed=spec.seed,
        churn=churn_rounds,
        byzantine=byz_plan.as_mapping() if byz_plan is not None else None,
    )
    result = engine.run(alg.protocol_factory(graph, spec))
    base.outputs = result.outputs
    base.rounds = result.rounds
    base.total_messages = result.total_messages
    base.total_payload = result.total_payload
    base.dropped_messages = result.dropped_messages
    base.swallowed_messages = result.swallowed_messages
    base.round_stats = result.round_stats
    base.crashed = result.crashed
    base.delayed_messages = result.delayed_messages
    base.churn_events = result.churn_events
    base.churn_lost_messages = result.churn_lost_messages
    base.suspicion = result.suspicion
    base.failed = result.failed
    base.timed_out = result.timed_out
    return base


def _simulate_task(task: tuple[dict, nx.Graph, SimulationSpec]) -> SimReport:
    """Module-level worker so ProcessPoolExecutor can pickle it."""
    meta, graph, spec = task
    return simulate(graph, spec, meta=meta)


def simulate_many(
    instances: Iterable,
    specs: SimulationSpec | str | Sequence[SimulationSpec | str],
    *,
    workers: int | None = None,
) -> list[SimReport]:
    """Run a batch of ``instances × specs`` through :func:`simulate`.

    ``instances`` may be bare graphs or ``(meta, graph)`` pairs (the
    shape :func:`repro.io.read_corpus` returns); ``specs`` may be one
    spec/name or a sequence.  ``workers`` > 1 runs the batch in a
    process pool; ordering is deterministic either way (instance-major,
    specs in the order given), and because reports carry no wall-clock
    fields the parallel batch is byte-identical to the serial one under
    JSON.  Capability checks run before any work starts, so a bad
    name/model fails fast instead of mid-sweep.

    Serial batches that revisit a graph (e.g. the S7 identifier sweep:
    one graph, many specs) reuse the graph's cached
    :class:`~repro.graphs.kernel.GraphKernel` — port orders and
    delivery routes are derived once per graph, not once per run.
    """
    if isinstance(specs, (SimulationSpec, str)):
        spec_list = [_as_spec(specs)]
    else:
        spec_list = [_as_spec(s) for s in specs]
    for spec in spec_list:
        _engine_spec(spec)

    tasks = [
        (meta, graph, spec)
        for meta, graph in _normalise_instances(instances)
        for spec in spec_list
    ]
    if not tasks:
        return []
    if workers is None or workers <= 1:
        return [_simulate_task(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # Executor.map preserves submission order, giving parallel runs
        # the exact serial ordering.  A dead worker surfaces as the
        # typed WorkerCrashError naming the first unfinished task, not
        # as a raw BrokenProcessPool.
        from repro.api.runner import WorkerCrashError

        results = pool.map(_simulate_task, tasks)
        reports: list[SimReport] = []
        try:
            for report in results:
                reports.append(report)
        except BrokenProcessPool as error:
            raise WorkerCrashError(
                "simulate", len(reports), len(tasks), tasks[len(reports)][0]
            ) from error
        return reports


def adversarial_degradation(
    graph: nx.Graph,
    spec: SimulationSpec | str,
    *,
    meta: dict | None = None,
) -> dict:
    """Run a spec and its fault-free twin on the same seed; compare.

    The accountability report of the adversarial layer: the twin strips
    faults, churn, and Byzantine behaviors (and maps the async/
    adversarial models back to LOCAL), so the two runs differ *only* in
    what the adversary did.  The achieved solution is then measured
    against the graph the run actually ended on — churn is
    re-materialized deterministically from (plan, graph, seed) and
    replayed up to the round the report stopped at — giving:

    * ``coverage`` — the fraction of final vertices the chosen set
      dominates;
    * ``valid`` — whether it still dominates everything;
    * ``ratio`` — achieved size vs the exact optimum of the final
      graph (``None`` when the adversary forced an empty answer on a
      non-empty graph — no ratio flatters a run that chose nothing);
    * ``baseline_ratio`` / ``agree`` — the fault-free twin's ratio and
      whether the two chosen sets coincide (``agree`` is the S12
      fault-free-column check: with a trivial adversary it must be
      true).

    Returns ``{"report", "baseline", "degradation"}``.
    """
    from repro.analysis.domination import is_dominating_set
    from repro.graphs.kernel import kernel_for
    from repro.solvers.exact import domination_number

    spec = _as_spec(spec)
    report = simulate(graph, spec, meta=meta)
    baseline_spec = spec.with_(
        faults=None,
        churn=None,
        byzantine=None,
        model="local" if spec.model in ("async", "adversarial") else spec.model,
    )
    baseline = simulate(graph, baseline_spec, meta=meta)

    final_graph = churned_graph(graph, spec.churn, spec.seed, report.rounds)
    final_vertices = set(final_graph.nodes)
    chosen = tuple(
        v for v in sorted(report.chosen, key=repr) if v in final_vertices
    )
    n_final = final_graph.number_of_nodes()
    if n_final and chosen:
        kernel = kernel_for(final_graph)
        covered = kernel.union_closed_bits(chosen).bit_count()
    else:
        covered = 0
    optimum = domination_number(final_graph) if n_final else 0
    degradation = {
        "final_n": n_final,
        "final_m": final_graph.number_of_edges(),
        "size": len(chosen),
        "coverage": covered / n_final if n_final else 1.0,
        "valid": is_dominating_set(final_graph, chosen),
        "optimum": optimum,
        "ratio": (
            None
            if n_final and not chosen
            else measured_ratio(len(chosen), optimum)
        ),
        "baseline_size": len(baseline.chosen),
        "baseline_ratio": measured_ratio(
            len(baseline.chosen), domination_number(graph) if len(graph) else 0
        ),
        "agree": report.chosen == baseline.chosen,
    }
    return {"report": report, "baseline": baseline, "degradation": degradation}
