"""Run configuration and run reports: the currency of :mod:`repro.api`.

A :class:`RunConfig` says *how* to run an algorithm (radius policy,
execution mode, validation level, exact-solver backend); a
:class:`RunReport` says *what happened* (the raw
:class:`~repro.core.results.AlgorithmResult` plus instance metadata,
wall time, validity, and the measured approximation ratio).  Both are
plain picklable dataclasses so :func:`repro.api.solve_many` can ship
them across process boundaries, and both round-trip through JSON via
:func:`repro.io.run_report_to_dict` / :func:`repro.io.run_report_from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.core.radii import RadiusPolicy
from repro.core.results import AlgorithmResult

MODES = ("fast", "simulate")
VALIDATION_LEVELS = ("none", "valid", "ratio")
SOLVER_BACKENDS = ("milp", "bnb")


@dataclass(frozen=True)
class RunConfig:
    """How to execute one algorithm run.

    * ``policy`` — the :class:`RadiusPolicy` for policy-aware algorithms
      (``None`` means the algorithm's registered default);
    * ``mode`` — ``"fast"`` (centralized computation of the same set) or
      ``"simulate"`` (true per-node message-passing execution); the
      registry rejects modes an algorithm does not support;
    * ``validate`` — ``"none"`` (trust the algorithm), ``"valid"``
      (check the output is a dominating set / vertex cover), or
      ``"ratio"`` (also solve the instance exactly and measure
      |ALG|/|OPT|);
    * ``solver`` — exact backend used by ``validate="ratio"`` and the
      ``exact`` algorithm: ``"milp"`` (scipy/HiGHS) or ``"bnb"``
      (pure-Python branch and bound).  MDS only — MVC optima always use
      the MILP backend;
    * ``opt_cache`` — serve ``validate="ratio"`` optima from the
      per-instance cache (:mod:`repro.solvers.opt_cache`), so a batch
      solves each instance exactly once per backend.  All backends are
      deterministic, so disabling the cache (the CLI's
      ``--no-opt-cache``) never changes a reported number — it only
      re-solves;
    * ``seed`` — recorded in reports for provenance (instance generation
      happens upstream; the algorithms themselves are deterministic).
    """

    policy: RadiusPolicy | None = None
    mode: str = "fast"
    validate: str = "valid"
    solver: str = "milp"
    opt_cache: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; choose from {MODES}")
        if self.validate not in VALIDATION_LEVELS:
            raise ValueError(
                f"unknown validation level {self.validate!r}; choose from {VALIDATION_LEVELS}"
            )
        if self.solver not in SOLVER_BACKENDS:
            raise ValueError(
                f"unknown solver backend {self.solver!r}; choose from {SOLVER_BACKENDS}"
            )

    def with_(self, **changes: object) -> "RunConfig":
        """A copy with the given fields replaced (frozen-dataclass update)."""
        return replace(self, **changes)


@dataclass
class RunReport:
    """Everything one :func:`repro.api.solve` call produced.

    ``instance`` always carries ``n`` and ``m``; callers that know more
    (family, size, seed — e.g. :func:`repro.experiments.workloads.run_workload`)
    merge it in.  ``valid``/``optimum_size``/``ratio`` are ``None`` when
    the configured validation level did not compute them.
    """

    algorithm: str
    problem: str
    instance: dict = field(default_factory=dict)
    result: AlgorithmResult | None = None
    config: RunConfig = field(default_factory=RunConfig)
    wall_time: float = 0.0
    valid: bool | None = None
    optimum_size: int | None = None
    ratio: float | None = None

    @property
    def size(self) -> int:
        return self.result.size if self.result is not None else 0

    @property
    def rounds(self) -> int:
        return self.result.rounds if self.result is not None else 0

    @property
    def solution(self) -> set:
        return self.result.solution if self.result is not None else set()


def run_config_from_options(
    *,
    simulate: bool = False,
    validate: str = "ratio",
    solver: str = "milp",
    opt_cache: bool = True,
    seed: int = 0,
    policy: "RadiusPolicy | None" = None,
) -> RunConfig:
    """Build a :class:`RunConfig` from front-door options.

    The single construction point shared by the CLI (``repro run`` /
    ``compare`` flags) and the serve request parser
    (:mod:`repro.serve.schema`), so the two entry points cannot drift:
    ``simulate`` maps to the execution mode, everything else passes
    through with the front doors' ``validate="ratio"`` default.
    """
    return RunConfig(
        policy=policy,
        mode="simulate" if simulate else "fast",
        validate=validate,
        solver=solver,
        opt_cache=opt_cache,
        seed=seed,
    )


def _vertex_label(label: str):
    """CLI vertex-label convention: digits mean int labels."""
    return int(label) if label.lstrip("-").isdigit() else label


def _round_suffix(text: str, what: str) -> tuple[str, int | None]:
    """Split a trailing ``@<round>`` off ``text``; round must parse."""
    body, at, round_text = text.partition("@")
    if not at:
        return body, None
    if not round_text.isdigit():
        raise ValueError(
            f"malformed {what} {text!r}: the part after '@' must be a "
            f"non-negative integer round, got {round_text!r}"
        )
    return body, int(round_text)


def parse_faults(text: str | None) -> "FaultPlan | None":
    """Parse a fault-plan string: ``drop=<p>`` and/or ``crash=<v>+<v>``.

    The one parser behind the CLI ``--faults`` flag and the serve wire
    schema's string-form ``"faults"`` field (``"drop=0.2,crash=0+4"``),
    so the accepted grammar cannot drift between entry points.  A crash
    entry may carry a round suffix — ``crash=4@3`` crashes vertex 4 at
    the start of round 3, mid-run (``@0`` is the same as no suffix: the
    node never starts).  ``None``/empty input means no fault plan.
    Raises ``ValueError`` with the offending fragment on malformed
    specs.
    """
    # Imported lazily: config is a leaf module and the engine pulls in
    # the whole local_model package.
    from repro.local_model.engine import FaultPlan

    if text is None:
        return None
    drop = 0.0
    crashed: list = []
    schedule: list = []
    for part in filter(None, (p.strip() for p in text.split(","))):
        key, _, value = part.partition("=")
        if key == "drop":
            try:
                drop = float(value)
            except ValueError:
                raise ValueError(
                    f"malformed drop probability {value!r}: expected a float "
                    f"in [0, 1], as in drop=0.2"
                ) from None
        elif key == "crash":
            for entry in filter(None, value.split("+")):
                label, when = _round_suffix(entry, "crash entry")
                if not label:
                    raise ValueError(
                        f"malformed crash entry {entry!r}: missing the vertex "
                        f"before '@'"
                    )
                vertex = _vertex_label(label)
                if when is None or when == 0:
                    crashed.append(vertex)
                else:
                    schedule.append((vertex, when))
        else:
            raise ValueError(
                f"unknown fault knob {key!r}; use drop=<p> and/or "
                f"crash=<v>+<v>[@<round>]"
            )
    return FaultPlan(
        drop_probability=drop,
        crashed=tuple(crashed),
        crash_schedule=tuple(schedule),
    )


def parse_churn(text: str | None) -> "ChurnPlan | None":
    """Parse a churn-plan string into a :class:`ChurnPlan`.

    Comma-separated parts, shared verbatim by the CLI ``--churn`` flag
    and the serve schema's string-form ``"churn"`` field:

    * ``rate=<p>`` / ``until=<r>`` — the seeded random edge-flip
      process: each round ``1..r`` flips one edge with probability
      ``p``;
    * ``add:<u>-<v>@<round>`` / ``del:<u>-<v>@<round>`` — explicit edge
      events;
    * ``join:<v>@<round>`` or ``join:<v>-<anchor>@<round>`` — a vertex
      joins (isolated, or attached to ``anchor``);
    * ``leave:<v>@<round>`` — a vertex departs with its edges.

    Example: ``"rate=0.1,until=20,del:0-1@4,join:9-4@3"``.  Raises
    ``ValueError`` with the offending fragment on malformed specs.
    """
    from repro.local_model.adversary import ChurnEvent, ChurnPlan

    if text is None:
        return None
    rate = 0.0
    until = 0
    events: list = []
    for part in filter(None, (p.strip() for p in text.split(","))):
        if part.startswith(("add:", "del:", "join:", "leave:")):
            kind_word, _, spec = part.partition(":")
            body, when = _round_suffix(spec, f"{kind_word} event")
            if when is None:
                raise ValueError(
                    f"malformed churn event {part!r}: every event needs an "
                    f"@<round> suffix, as in del:0-1@4"
                )
            if kind_word in ("add", "del"):
                u_text, dash, v_text = body.partition("-")
                if not dash or not u_text or not v_text:
                    raise ValueError(
                        f"malformed churn event {part!r}: {kind_word} takes "
                        f"two '-'-separated endpoints, as in {kind_word}:0-1@4"
                    )
                kind = "add_edge" if kind_word == "add" else "del_edge"
                events.append(
                    ChurnEvent(
                        when, kind, _vertex_label(u_text), _vertex_label(v_text)
                    )
                )
            elif kind_word == "join":
                u_text, dash, v_text = body.partition("-")
                if not u_text:
                    raise ValueError(
                        f"malformed churn event {part!r}: join takes "
                        f"<v>[@-<anchor>], as in join:9-4@3"
                    )
                anchor = _vertex_label(v_text) if dash and v_text else None
                events.append(ChurnEvent(when, "join", _vertex_label(u_text), anchor))
            else:  # leave
                if not body:
                    raise ValueError(
                        f"malformed churn event {part!r}: leave takes one "
                        f"vertex, as in leave:2@5"
                    )
                events.append(ChurnEvent(when, "leave", _vertex_label(body)))
            continue
        key, eq, value = part.partition("=")
        if not eq or key not in ("rate", "until"):
            raise ValueError(
                f"unknown churn knob {part!r}; use rate=<p>, until=<r>, or "
                f"events add:/del:/join:/leave: with an @<round> suffix"
            )
        try:
            if key == "rate":
                rate = float(value)
            else:
                until = int(value)
        except ValueError:
            raise ValueError(
                f"malformed churn knob {part!r}: {key} takes a number"
            ) from None
    return ChurnPlan(events=tuple(events), rate=rate, until=until)


def parse_byzantine(text: str | None) -> "ByzantinePlan | None":
    """Parse a Byzantine-plan string into a :class:`ByzantinePlan`.

    Comma-separated ``<behavior>=<v>+<v>`` parts, shared by the CLI
    ``--byzantine`` flag and the serve schema — e.g.
    ``"babble=0+3,lie=7"``.  Behaviors come from
    :data:`~repro.local_model.adversary.BYZANTINE_BEHAVIORS`; an unknown
    one raises ``ValueError`` listing the valid choices.
    """
    from repro.local_model.adversary import BYZANTINE_BEHAVIORS, ByzantinePlan

    if text is None:
        return None
    behaviors: list = []
    for part in filter(None, (p.strip() for p in text.split(","))):
        behavior, eq, value = part.partition("=")
        if not eq or behavior not in BYZANTINE_BEHAVIORS:
            raise ValueError(
                f"unknown byzantine behavior {behavior!r}; choose from "
                f"{BYZANTINE_BEHAVIORS}, as in babble=0+3"
            )
        labels = [label for label in value.split("+") if label]
        if not labels:
            raise ValueError(
                f"malformed byzantine entry {part!r}: {behavior} needs at "
                f"least one vertex, as in {behavior}=0+3"
            )
        for label in labels:
            behaviors.append((_vertex_label(label), behavior))
    return ByzantinePlan(behaviors=tuple(behaviors))


def measured_ratio(size: int, optimum_size: int) -> float:
    """|ALG| / |OPT| with the shared empty-optimum convention (cf.
    :class:`repro.analysis.ratio.RatioReport`): 1.0 when both are
    empty, infinite when only the optimum is."""
    if optimum_size == 0:
        return 1.0 if size == 0 else float("inf")
    return size / optimum_size


def instance_meta(graph, extra: Mapping | None = None) -> dict:
    """The standard instance-metadata dict (``n``, ``m``, caller extras)."""
    meta = {"n": graph.number_of_nodes(), "m": graph.number_of_edges()}
    if extra:
        meta.update(extra)
    return meta
