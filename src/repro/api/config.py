"""Run configuration and run reports: the currency of :mod:`repro.api`.

A :class:`RunConfig` says *how* to run an algorithm (radius policy,
execution mode, validation level, exact-solver backend); a
:class:`RunReport` says *what happened* (the raw
:class:`~repro.core.results.AlgorithmResult` plus instance metadata,
wall time, validity, and the measured approximation ratio).  Both are
plain picklable dataclasses so :func:`repro.api.solve_many` can ship
them across process boundaries, and both round-trip through JSON via
:func:`repro.io.run_report_to_dict` / :func:`repro.io.run_report_from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.core.radii import RadiusPolicy
from repro.core.results import AlgorithmResult

MODES = ("fast", "simulate")
VALIDATION_LEVELS = ("none", "valid", "ratio")
SOLVER_BACKENDS = ("milp", "bnb")


@dataclass(frozen=True)
class RunConfig:
    """How to execute one algorithm run.

    * ``policy`` — the :class:`RadiusPolicy` for policy-aware algorithms
      (``None`` means the algorithm's registered default);
    * ``mode`` — ``"fast"`` (centralized computation of the same set) or
      ``"simulate"`` (true per-node message-passing execution); the
      registry rejects modes an algorithm does not support;
    * ``validate`` — ``"none"`` (trust the algorithm), ``"valid"``
      (check the output is a dominating set / vertex cover), or
      ``"ratio"`` (also solve the instance exactly and measure
      |ALG|/|OPT|);
    * ``solver`` — exact backend used by ``validate="ratio"`` and the
      ``exact`` algorithm: ``"milp"`` (scipy/HiGHS) or ``"bnb"``
      (pure-Python branch and bound).  MDS only — MVC optima always use
      the MILP backend;
    * ``opt_cache`` — serve ``validate="ratio"`` optima from the
      per-instance cache (:mod:`repro.solvers.opt_cache`), so a batch
      solves each instance exactly once per backend.  All backends are
      deterministic, so disabling the cache (the CLI's
      ``--no-opt-cache``) never changes a reported number — it only
      re-solves;
    * ``seed`` — recorded in reports for provenance (instance generation
      happens upstream; the algorithms themselves are deterministic).
    """

    policy: RadiusPolicy | None = None
    mode: str = "fast"
    validate: str = "valid"
    solver: str = "milp"
    opt_cache: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; choose from {MODES}")
        if self.validate not in VALIDATION_LEVELS:
            raise ValueError(
                f"unknown validation level {self.validate!r}; choose from {VALIDATION_LEVELS}"
            )
        if self.solver not in SOLVER_BACKENDS:
            raise ValueError(
                f"unknown solver backend {self.solver!r}; choose from {SOLVER_BACKENDS}"
            )

    def with_(self, **changes: object) -> "RunConfig":
        """A copy with the given fields replaced (frozen-dataclass update)."""
        return replace(self, **changes)


@dataclass
class RunReport:
    """Everything one :func:`repro.api.solve` call produced.

    ``instance`` always carries ``n`` and ``m``; callers that know more
    (family, size, seed — e.g. :func:`repro.experiments.workloads.run_workload`)
    merge it in.  ``valid``/``optimum_size``/``ratio`` are ``None`` when
    the configured validation level did not compute them.
    """

    algorithm: str
    problem: str
    instance: dict = field(default_factory=dict)
    result: AlgorithmResult | None = None
    config: RunConfig = field(default_factory=RunConfig)
    wall_time: float = 0.0
    valid: bool | None = None
    optimum_size: int | None = None
    ratio: float | None = None

    @property
    def size(self) -> int:
        return self.result.size if self.result is not None else 0

    @property
    def rounds(self) -> int:
        return self.result.rounds if self.result is not None else 0

    @property
    def solution(self) -> set:
        return self.result.solution if self.result is not None else set()


def run_config_from_options(
    *,
    simulate: bool = False,
    validate: str = "ratio",
    solver: str = "milp",
    opt_cache: bool = True,
    seed: int = 0,
    policy: "RadiusPolicy | None" = None,
) -> RunConfig:
    """Build a :class:`RunConfig` from front-door options.

    The single construction point shared by the CLI (``repro run`` /
    ``compare`` flags) and the serve request parser
    (:mod:`repro.serve.schema`), so the two entry points cannot drift:
    ``simulate`` maps to the execution mode, everything else passes
    through with the front doors' ``validate="ratio"`` default.
    """
    return RunConfig(
        policy=policy,
        mode="simulate" if simulate else "fast",
        validate=validate,
        solver=solver,
        opt_cache=opt_cache,
        seed=seed,
    )


def parse_faults(text: str | None) -> "FaultPlan | None":
    """Parse a fault-plan string: ``drop=<p>`` and/or ``crash=<v>+<v>``.

    The one parser behind the CLI ``--faults`` flag and the serve wire
    schema's string-form ``"faults"`` field (``"drop=0.2,crash=0+4"``),
    so the accepted grammar cannot drift between entry points.
    ``None``/empty input means no fault plan.  Raises ``ValueError`` on
    an unknown knob.
    """
    # Imported lazily: config is a leaf module and the engine pulls in
    # the whole local_model package.
    from repro.local_model.engine import FaultPlan

    if text is None:
        return None
    drop = 0.0
    crashed: list = []
    for part in filter(None, (p.strip() for p in text.split(","))):
        key, _, value = part.partition("=")
        if key == "drop":
            drop = float(value)
        elif key == "crash":
            for label in filter(None, value.split("+")):
                crashed.append(int(label) if label.lstrip("-").isdigit() else label)
        else:
            raise ValueError(
                f"unknown fault knob {key!r}; use drop=<p> and/or crash=<v>+<v>"
            )
    return FaultPlan(drop_probability=drop, crashed=tuple(crashed))


def measured_ratio(size: int, optimum_size: int) -> float:
    """|ALG| / |OPT| with the shared empty-optimum convention (cf.
    :class:`repro.analysis.ratio.RatioReport`): 1.0 when both are
    empty, infinite when only the optimum is."""
    if optimum_size == 0:
        return 1.0 if size == 0 else float("inf")
    return size / optimum_size


def instance_meta(graph, extra: Mapping | None = None) -> dict:
    """The standard instance-metadata dict (``n``, ``m``, caller extras)."""
    meta = {"n": graph.number_of_nodes(), "m": graph.number_of_edges()}
    if extra:
        meta.update(extra)
    return meta
