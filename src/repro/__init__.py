"""repro — reproduction of *Local Constant Approximation for Dominating
Set on Graphs Excluding Large Minors* (Bonamy, Gavoille, Picavet,
Wesolek; PODC 2025, arXiv:2504.01091).

Public API highlights:

* :func:`repro.algorithm1` — Theorem 4.1's 50-approximation LOCAL MDS
  algorithm for ``K_{2,t}``-minor-free graphs;
* :func:`repro.algorithm2` — Theorem 4.3's asymptotic-dimension variant;
* :func:`repro.d2_dominating_set` — Theorem 4.4's 3-round
  ``(2t−1)``-approximation;
* :mod:`repro.local_model` — the deterministic LOCAL-model simulator;
* :mod:`repro.graphs` — generators, local cuts, minors, covers;
* :mod:`repro.solvers` — exact/baseline MDS and MVC solvers;
* :mod:`repro.analysis` — validity checks, ratio measurement, lemma
  verification;
* :mod:`repro.experiments` — the Table 1 / figure harnesses.
"""

from repro.core import (
    AlgorithmResult,
    RadiusPolicy,
    algorithm1,
    algorithm2,
    d2_dominating_set,
    d2_vertex_cover,
    degree_two_dominating_set,
    full_gather_exact,
    local_cuts_vertex_cover,
    take_all_vertices,
)
from repro.solvers import (
    greedy_dominating_set,
    minimum_dominating_set,
    minimum_vertex_cover,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmResult",
    "RadiusPolicy",
    "algorithm1",
    "algorithm2",
    "d2_dominating_set",
    "d2_vertex_cover",
    "degree_two_dominating_set",
    "full_gather_exact",
    "local_cuts_vertex_cover",
    "take_all_vertices",
    "greedy_dominating_set",
    "minimum_dominating_set",
    "minimum_vertex_cover",
    "__version__",
]
