"""repro — reproduction of *Local Constant Approximation for Dominating
Set on Graphs Excluding Large Minors* (Bonamy, Gavoille, Picavet,
Wesolek; PODC 2025, arXiv:2504.01091).

The recommended entry point is the :mod:`repro.api` front door::

    from repro import RunConfig, solve, solve_many, list_algorithms

    report = solve(graph, "algorithm1", RunConfig(validate="ratio"))
    print(report.size, report.ratio, report.rounds, report.valid)

    # Batch sweeps, optionally process-parallel and order-deterministic:
    reports = solve_many(
        [graph_a, graph_b], ["d2", "algorithm1"],
        RunConfig(validate="ratio"), workers=2,
    )

    for spec in list_algorithms("mds"):
        print(spec.name, spec.modes, spec.guarantee)

Layers underneath:

* :func:`repro.algorithm1` — Theorem 4.1's 50-approximation LOCAL MDS
  algorithm for ``K_{2,t}``-minor-free graphs;
* :func:`repro.algorithm2` — Theorem 4.3's asymptotic-dimension variant;
* :func:`repro.d2_dominating_set` — Theorem 4.4's 3-round
  ``(2t−1)``-approximation;
* :mod:`repro.api` — the algorithm registry, run configs/reports, the
  parallel batch runner, and the :func:`repro.simulate` /
  :func:`repro.simulate_many` simulation front door;
* :mod:`repro.local_model` — the unified round-model simulation engine
  (pluggable LOCAL/CONGEST schedulers, fault plans, trace policies);
* :mod:`repro.graphs` — generators, local cuts, minors, covers;
* :mod:`repro.solvers` — exact/baseline MDS and MVC solvers;
* :mod:`repro.analysis` — validity checks, ratio measurement, lemma
  verification;
* :mod:`repro.experiments` — the Table 1 / figure harnesses.
"""

from repro.analysis.domination import is_dominating_set
from repro.analysis.ratio import measure_ratio
from repro.api import (
    AlgorithmSpec,
    FaultPlan,
    RunConfig,
    RunReport,
    SimReport,
    SimulationSpec,
    UnknownAlgorithmError,
    UnsupportedModeError,
    get_algorithm,
    list_algorithms,
    register_algorithm,
    simulate,
    simulate_many,
    solve,
    solve_many,
)
from repro.core import (
    AlgorithmResult,
    RadiusPolicy,
    algorithm1,
    algorithm2,
    d2_dominating_set,
    d2_vertex_cover,
    degree_two_dominating_set,
    full_gather_exact,
    local_cuts_vertex_cover,
    take_all_vertices,
)
from repro.core.distributed_greedy import distributed_greedy_dominating_set
from repro.solvers import (
    greedy_dominating_set,
    minimum_dominating_set,
    minimum_vertex_cover,
)

__version__ = "1.1.0"

__all__ = [
    "AlgorithmResult",
    "AlgorithmSpec",
    "FaultPlan",
    "RadiusPolicy",
    "RunConfig",
    "RunReport",
    "SimReport",
    "SimulationSpec",
    "UnknownAlgorithmError",
    "UnsupportedModeError",
    "algorithm1",
    "algorithm2",
    "d2_dominating_set",
    "d2_vertex_cover",
    "degree_two_dominating_set",
    "distributed_greedy_dominating_set",
    "full_gather_exact",
    "get_algorithm",
    "greedy_dominating_set",
    "is_dominating_set",
    "list_algorithms",
    "local_cuts_vertex_cover",
    "measure_ratio",
    "minimum_dominating_set",
    "minimum_vertex_cover",
    "register_algorithm",
    "simulate",
    "simulate_many",
    "solve",
    "solve_many",
    "take_all_vertices",
    "__version__",
]
