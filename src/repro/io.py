"""Instance and result persistence (JSON, no external deps).

Experiments should be replayable from artifacts: this module serialises
graphs, algorithm results, and sweep tables to a stable JSON layout.

* graphs — ``{"nodes": [...], "edges": [[u, v], ...], "meta": {...}}``
  with sorted nodes/edges so files are diff-able;
* results — name/solution/rounds/phases/metadata;
* run reports — the :class:`repro.api.RunReport` records produced by
  :func:`repro.api.solve`, via :func:`run_report_to_dict` /
  :func:`run_report_from_dict` (and file-level :func:`save_run_reports`
  / :func:`load_run_reports`);
* simulation reports — the :class:`repro.api.SimReport` records
  produced by :func:`repro.api.simulate`, via
  :func:`sim_report_to_dict` / :func:`sim_report_from_dict` (and
  file-level :func:`save_sim_reports` / :func:`load_sim_reports`);
  serialisation is fully deterministic (sorted sets, no wall-clock
  fields), so parallel sweeps dump byte-identically to serial ones;
* corpora — a directory of instances addressed by family/size/seed,
  written by :func:`write_corpus` and reloaded by :func:`read_corpus`.
"""

from __future__ import annotations

import base64
import json
import os
import tempfile
from pathlib import Path
from typing import Iterable

import networkx as nx

from repro.core.results import AlgorithmResult


def write_text_atomic(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` so a crash can never leave a torn file.

    The text lands in a temporary file in the *same directory* (rename
    across filesystems is not atomic), is fsync'd, and is then renamed
    over the destination; the directory is fsync'd afterwards so the
    rename itself survives a power loss.  Readers therefore see either
    the complete old content or the complete new content — never a
    prefix.  This is the sanctioned write path for every checkpoint-like
    artifact (sweep manifests/checkpoints, serve result spills and job
    journals); ``repro lint`` RPR006 flags raw writes in those modules.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def write_json_atomic(path: str | Path, payload: object, *, indent: int = 1) -> None:
    """:func:`write_text_atomic` for a JSON payload (the common case)."""
    write_text_atomic(path, json.dumps(payload, indent=indent))


def graph_to_dict(graph: nx.Graph, meta: dict | None = None) -> dict:
    """JSON-ready dict for a graph (integer-labelled)."""
    return {
        "nodes": sorted(graph.nodes),
        "edges": sorted([sorted(e) for e in graph.edges]),
        "meta": dict(meta or {}),
    }


def graph_from_dict(data: dict) -> nx.Graph:
    """Inverse of :func:`graph_to_dict`."""
    graph = nx.Graph()
    graph.add_nodes_from(data["nodes"])
    graph.add_edges_from((u, v) for u, v in data["edges"])
    return graph


def save_graph(graph: nx.Graph, path: str | Path, meta: dict | None = None) -> None:
    Path(path).write_text(json.dumps(graph_to_dict(graph, meta), indent=1))


def load_graph(path: str | Path) -> nx.Graph:
    return graph_from_dict(json.loads(Path(path).read_text()))


#: Bytes of CSR blob encoded per base64 block.  A multiple of 3 so the
#: per-block encodings concatenate into one valid base64 string; sized
#: so encoding a million-node wire never materialises more than one
#: small transient buffer beyond the output.
_B64_CHUNK = 3 * (1 << 20)


def _b64_chunked(blob: bytes) -> str:
    """``base64.b64encode`` in bounded chunks (large-wire friendly)."""
    view = memoryview(blob)
    return "".join(
        base64.b64encode(view[start : start + _B64_CHUNK]).decode("ascii")
        for start in range(0, len(view), _B64_CHUNK)
    )


def kernel_wire_to_dict(wire: "KernelWire") -> dict:
    """JSON-ready dict for a :class:`repro.graphs.kernel.KernelWire`.

    The CSR byte arrays travel base64-encoded (chunk-encoded, so the
    transient working set stays bounded even for million-node wires);
    labels travel as plain JSON (tuple labels become lists and are
    re-tupled on the way back, like every other vertex round-trip in
    this module).
    """
    return {
        "labels": list(wire.labels),
        "indptr": _b64_chunked(wire.indptr),
        "indices": _b64_chunked(wire.indices),
    }


def kernel_wire_from_dict(data: dict) -> "KernelWire":
    """Inverse of :func:`kernel_wire_to_dict`."""
    from repro.graphs.kernel import KernelWire

    return KernelWire(
        labels=tuple(_vertex_from_json(label) for label in data["labels"]),
        indptr=base64.b64decode(data["indptr"]),
        indices=base64.b64decode(data["indices"]),
    )


def result_to_dict(result: AlgorithmResult) -> dict:
    """JSON-ready dict for an algorithm result."""
    return {
        "name": result.name,
        "solution": sorted(result.solution, key=repr),
        "rounds": result.rounds,
        "phases": {k: sorted(v, key=repr) for k, v in result.phases.items()},
        "round_breakdown": dict(result.round_breakdown),
        "metadata": {k: v for k, v in result.metadata.items() if _jsonable(v)},
    }


def result_from_dict(data: dict) -> AlgorithmResult:
    return AlgorithmResult(
        name=data["name"],
        solution=set(data["solution"]),
        rounds=data["rounds"],
        phases={k: set(v) for k, v in data.get("phases", {}).items()},
        round_breakdown=dict(data.get("round_breakdown", {})),
        metadata=dict(data.get("metadata", {})),
    )


def run_config_to_dict(config: "RunConfig") -> dict:
    """JSON-ready dict for a :class:`repro.api.RunConfig`."""
    policy = config.policy
    return {
        "policy": None
        if policy is None
        else {
            "one_cut_radius": policy.one_cut_radius,
            "two_cut_radius": policy.two_cut_radius,
            "dimension": policy.dimension,
            "label": policy.label,
        },
        "mode": config.mode,
        "validate": config.validate,
        "solver": config.solver,
        "opt_cache": config.opt_cache,
        "seed": config.seed,
    }


def run_config_from_dict(data: dict) -> "RunConfig":
    """Inverse of :func:`run_config_to_dict`."""
    from repro.api.config import RunConfig
    from repro.core.radii import RadiusPolicy

    policy = None
    if data.get("policy") is not None:
        policy = RadiusPolicy(**data["policy"])
    return RunConfig(
        policy=policy,
        mode=data.get("mode", "fast"),
        validate=data.get("validate", "valid"),
        solver=data.get("solver", "milp"),
        opt_cache=data.get("opt_cache", True),
        seed=data.get("seed", 0),
    )


def run_report_to_dict(report: "RunReport") -> dict:
    """JSON-ready dict for a :class:`repro.api.RunReport`."""
    return {
        "algorithm": report.algorithm,
        "problem": report.problem,
        "instance": {k: v for k, v in report.instance.items() if _jsonable(v)},
        "result": None if report.result is None else result_to_dict(report.result),
        "config": run_config_to_dict(report.config),
        "wall_time": report.wall_time,
        "valid": report.valid,
        "optimum_size": report.optimum_size,
        "ratio": report.ratio,
    }


def run_report_from_dict(data: dict) -> "RunReport":
    """Inverse of :func:`run_report_to_dict`."""
    from repro.api.config import RunReport

    result = None
    if data.get("result") is not None:
        result = result_from_dict(data["result"])
    return RunReport(
        algorithm=data["algorithm"],
        problem=data["problem"],
        instance=dict(data.get("instance", {})),
        result=result,
        config=run_config_from_dict(data.get("config", {})),
        wall_time=data.get("wall_time", 0.0),
        valid=data.get("valid"),
        optimum_size=data.get("optimum_size"),
        ratio=data.get("ratio"),
    )


def fault_plan_to_dict(plan: "FaultPlan | None") -> dict | None:
    """JSON-ready dict for a :class:`repro.api.FaultPlan` (or ``None``).

    ``crash_schedule`` is emitted only when non-empty, so pre-existing
    fault-plan JSON stays byte-identical.
    """
    if plan is None:
        return None
    data = {
        "drop_probability": plan.drop_probability,
        "crashed": sorted(plan.crashed, key=repr),
    }
    if plan.crash_schedule:
        data["crash_schedule"] = sorted(
            ([v, when] for v, when in plan.crash_schedule),
            key=lambda entry: (entry[1], repr(entry[0])),
        )
    return data


def fault_plan_from_dict(data: dict | None) -> "FaultPlan | None":
    """Inverse of :func:`fault_plan_to_dict`."""
    from repro.local_model.engine import FaultPlan

    if data is None:
        return None
    return FaultPlan(
        drop_probability=data.get("drop_probability", 0.0),
        crashed=tuple(_vertex_from_json(v) for v in data.get("crashed", ())),
        crash_schedule=tuple(
            (_vertex_from_json(v), when)
            for v, when in data.get("crash_schedule", ())
        ),
    )


def churn_plan_to_dict(plan: "ChurnPlan | None") -> dict | None:
    """JSON-ready dict for a :class:`~repro.local_model.adversary.ChurnPlan`.

    Events travel as ``[round, kind, u, v]`` quadruples in plan order
    (application order matters within a round).
    """
    if plan is None:
        return None
    return {
        "events": [[e.round, e.kind, e.u, e.v] for e in plan.events],
        "rate": plan.rate,
        "until": plan.until,
    }


def churn_plan_from_dict(data: dict | None) -> "ChurnPlan | None":
    """Inverse of :func:`churn_plan_to_dict`."""
    from repro.local_model.adversary import ChurnEvent, ChurnPlan

    if data is None:
        return None
    return ChurnPlan(
        events=tuple(
            ChurnEvent(
                round=round_index,
                kind=kind,
                u=_vertex_from_json(u),
                v=_vertex_from_json(v),
            )
            for round_index, kind, u, v in data.get("events", ())
        ),
        rate=data.get("rate", 0.0),
        until=data.get("until", 0),
    )


def byzantine_plan_to_dict(plan: "ByzantinePlan | None") -> dict | None:
    """JSON-ready dict for a
    :class:`~repro.local_model.adversary.ByzantinePlan` (vertex-sorted
    for deterministic bytes)."""
    if plan is None:
        return None
    return {
        "behaviors": [
            [v, behavior]
            for v, behavior in sorted(plan.behaviors, key=lambda p: repr(p[0]))
        ]
    }


def byzantine_plan_from_dict(data: dict | None) -> "ByzantinePlan | None":
    """Inverse of :func:`byzantine_plan_to_dict`."""
    from repro.local_model.adversary import ByzantinePlan

    if data is None:
        return None
    return ByzantinePlan(
        behaviors=tuple(
            (_vertex_from_json(v), behavior)
            for v, behavior in data.get("behaviors", ())
        )
    )


def sim_spec_to_dict(spec: "SimulationSpec") -> dict:
    """JSON-ready dict for a :class:`repro.api.SimulationSpec`.

    Adversarial fields are *default-skipping*: ``churn``/``byzantine``
    appear only when set and non-trivial, ``delay`` only when it
    differs from the default — so specs without adversarial features
    serialise to exactly their pre-adversarial bytes (and a trivial
    plan deliberately round-trips to ``None``).
    """
    data = {
        "algorithm": spec.algorithm,
        "model": spec.model,
        "budget": spec.budget,
        "max_rounds": spec.max_rounds,
        "trace": spec.trace,
        "seed": spec.seed,
        "faults": fault_plan_to_dict(spec.faults),
        "ids": spec.ids,
    }
    if spec.churn is not None and not spec.churn.is_trivial:
        data["churn"] = churn_plan_to_dict(spec.churn)
    if spec.byzantine is not None and not spec.byzantine.is_trivial:
        data["byzantine"] = byzantine_plan_to_dict(spec.byzantine)
    if spec.delay != 2:
        data["delay"] = spec.delay
    return data


def sim_spec_from_dict(data: dict) -> "SimulationSpec":
    """Inverse of :func:`sim_spec_to_dict`."""
    from repro.api.simulation import SimulationSpec

    return SimulationSpec(
        algorithm=data["algorithm"],
        model=data.get("model", "local"),
        budget=data.get("budget", 4),
        max_rounds=data.get("max_rounds", 10_000),
        trace=data.get("trace", "stats"),
        seed=data.get("seed", 0),
        faults=fault_plan_from_dict(data.get("faults")),
        ids=data.get("ids", "identity"),
        churn=churn_plan_from_dict(data.get("churn")),
        byzantine=byzantine_plan_from_dict(data.get("byzantine")),
        delay=data.get("delay", 2),
    )


def sim_report_to_dict(report: "SimReport") -> dict:
    """JSON-ready dict for a :class:`repro.api.SimReport`.

    ``outputs`` is a vertex-sorted pair list (JSON objects cannot carry
    non-string keys); non-JSON-able outputs are dropped, like result
    metadata.  The layout contains no wall-clock data, so equal runs
    serialise to equal bytes.  Adversarial tallies (delays, churn,
    suspicion, failures, timeout) are default-skipping: a benign run's
    JSON is byte-identical to the pre-adversarial layout.
    """
    data = {
        "algorithm": report.algorithm,
        "problem": report.problem,
        "model": report.model,
        "instance": {k: v for k, v in report.instance.items() if _jsonable(v)},
        "spec": None if report.spec is None else sim_spec_to_dict(report.spec),
        "outputs": [
            [v, output]
            for v, output in sorted(report.outputs.items(), key=lambda kv: repr(kv[0]))
            if _jsonable(output)
        ],
        "rounds": report.rounds,
        "total_messages": report.total_messages,
        "total_payload": report.total_payload,
        "dropped_messages": report.dropped_messages,
        "swallowed_messages": report.swallowed_messages,
        "crashed": sorted(report.crashed, key=repr),
        "round_stats": None
        if report.round_stats is None
        else [
            {
                "round_index": s.round_index,
                "messages": s.messages,
                "payload_units": s.payload_units,
            }
            for s in report.round_stats
        ],
    }
    if report.delayed_messages:
        data["delayed_messages"] = report.delayed_messages
    if report.churn_events:
        data["churn_events"] = report.churn_events
    if report.churn_lost_messages:
        data["churn_lost_messages"] = report.churn_lost_messages
    if report.suspicion:
        data["suspicion"] = [
            [v, tallies]
            for v, tallies in sorted(
                report.suspicion.items(), key=lambda kv: repr(kv[0])
            )
        ]
    if report.failed:
        data["failed"] = sorted(report.failed, key=repr)
    if report.timed_out:
        data["timed_out"] = True
    return data


def _vertex_from_json(value: object) -> object:
    """Re-hash a JSON-decoded vertex label: lists (JSON has no tuples)
    come back as tuples, recursively, so tuple-labelled graphs (e.g.
    ``nx.grid_2d_graph``) survive the round-trip."""
    if isinstance(value, list):
        return tuple(_vertex_from_json(item) for item in value)
    return value


def sim_report_from_dict(data: dict) -> "SimReport":
    """Inverse of :func:`sim_report_to_dict`."""
    from repro.api.simulation import SimReport
    from repro.local_model.instrumentation import RoundStats

    round_stats = None
    if data.get("round_stats") is not None:
        round_stats = [RoundStats(**s) for s in data["round_stats"]]
    return SimReport(
        algorithm=data["algorithm"],
        problem=data["problem"],
        model=data.get("model", "local"),
        instance=dict(data.get("instance", {})),
        spec=None if data.get("spec") is None else sim_spec_from_dict(data["spec"]),
        outputs={
            _vertex_from_json(v): output for v, output in data.get("outputs", [])
        },
        rounds=data.get("rounds", 0),
        total_messages=data.get("total_messages", 0),
        total_payload=data.get("total_payload", 0),
        dropped_messages=data.get("dropped_messages", 0),
        swallowed_messages=data.get("swallowed_messages", 0),
        crashed=tuple(_vertex_from_json(v) for v in data.get("crashed", ())),
        round_stats=round_stats,
        delayed_messages=data.get("delayed_messages", 0),
        churn_events=data.get("churn_events", 0),
        churn_lost_messages=data.get("churn_lost_messages", 0),
        suspicion={
            _vertex_from_json(v): dict(tallies)
            for v, tallies in data.get("suspicion", ())
        },
        failed=tuple(_vertex_from_json(v) for v in data.get("failed", ())),
        timed_out=data.get("timed_out", False),
    )


def save_sim_reports(reports: "Iterable[SimReport]", path: str | Path) -> None:
    """Persist a batch of simulation reports (a `simulate_many` sweep)."""
    payload = [sim_report_to_dict(r) for r in reports]
    Path(path).write_text(json.dumps(payload, indent=1))


def load_sim_reports(path: str | Path) -> "list[SimReport]":
    """Inverse of :func:`save_sim_reports`."""
    return [sim_report_from_dict(d) for d in json.loads(Path(path).read_text())]


def save_run_reports(reports: "Iterable[RunReport]", path: str | Path) -> None:
    """Persist a batch of run reports (e.g. a `solve_many` sweep)."""
    payload = [run_report_to_dict(r) for r in reports]
    Path(path).write_text(json.dumps(payload, indent=1))


def load_run_reports(path: str | Path) -> "list[RunReport]":
    """Inverse of :func:`save_run_reports`."""
    return [run_report_from_dict(d) for d in json.loads(Path(path).read_text())]


def counted_payload(key: str, items: list, **extra: object) -> dict:
    """The shared counted-list JSON envelope: ``{key: items, "count": n}``.

    One shape for every "list of things plus how many" payload, so
    consumers parse them uniformly: ``repro lint --json`` reports its
    findings with it, and the serve ``GET /stats`` endpoint reports the
    observable job queue with it (plus ``capacity`` as an extra).
    """
    return {key: list(items), "count": len(items), **extra}


def _jsonable(value: object) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False


def save_rows(rows: list[dict], path: str | Path) -> None:
    """Persist a sweep table (list of uniform dicts)."""
    Path(path).write_text(json.dumps(rows, indent=1, default=str))


def load_rows(path: str | Path) -> list[dict]:
    return json.loads(Path(path).read_text())


def write_corpus(
    directory: str | Path,
    family_names: Iterable[str],
    sizes: Iterable[int],
    seeds: Iterable[int] = (0,),
) -> list[Path]:
    """Materialise a corpus of instances on disk; returns written paths."""
    from repro.graphs.families import get_family

    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    written = []
    for name in family_names:
        family = get_family(name)
        for size in sizes:
            for seed in seeds:
                graph = family.make(size, seed)
                meta = {"family": name, "size": size, "seed": seed}
                path = root / f"{name}_n{size}_s{seed}.json"
                save_graph(graph, path, meta)
                written.append(path)
    return written


def read_corpus(directory: str | Path) -> list[tuple[dict, nx.Graph]]:
    """Load every instance of a corpus as (meta, graph) pairs."""
    out = []
    for path in sorted(Path(directory).glob("*.json")):
        data = json.loads(path.read_text())
        out.append((data.get("meta", {}), graph_from_dict(data)))
    return out
