"""Instance and result persistence (JSON, no external deps).

Experiments should be replayable from artifacts: this module serialises
graphs, algorithm results, and sweep tables to a stable JSON layout.

* graphs — ``{"nodes": [...], "edges": [[u, v], ...], "meta": {...}}``
  with sorted nodes/edges so files are diff-able;
* results — name/solution/rounds/phases/metadata;
* run reports — the :class:`repro.api.RunReport` records produced by
  :func:`repro.api.solve`, via :func:`run_report_to_dict` /
  :func:`run_report_from_dict` (and file-level :func:`save_run_reports`
  / :func:`load_run_reports`);
* corpora — a directory of instances addressed by family/size/seed,
  written by :func:`write_corpus` and reloaded by :func:`read_corpus`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

import networkx as nx

from repro.core.results import AlgorithmResult


def graph_to_dict(graph: nx.Graph, meta: dict | None = None) -> dict:
    """JSON-ready dict for a graph (integer-labelled)."""
    return {
        "nodes": sorted(graph.nodes),
        "edges": sorted([sorted(e) for e in graph.edges]),
        "meta": dict(meta or {}),
    }


def graph_from_dict(data: dict) -> nx.Graph:
    """Inverse of :func:`graph_to_dict`."""
    graph = nx.Graph()
    graph.add_nodes_from(data["nodes"])
    graph.add_edges_from((u, v) for u, v in data["edges"])
    return graph


def save_graph(graph: nx.Graph, path: str | Path, meta: dict | None = None) -> None:
    Path(path).write_text(json.dumps(graph_to_dict(graph, meta), indent=1))


def load_graph(path: str | Path) -> nx.Graph:
    return graph_from_dict(json.loads(Path(path).read_text()))


def result_to_dict(result: AlgorithmResult) -> dict:
    """JSON-ready dict for an algorithm result."""
    return {
        "name": result.name,
        "solution": sorted(result.solution, key=repr),
        "rounds": result.rounds,
        "phases": {k: sorted(v, key=repr) for k, v in result.phases.items()},
        "round_breakdown": dict(result.round_breakdown),
        "metadata": {k: v for k, v in result.metadata.items() if _jsonable(v)},
    }


def result_from_dict(data: dict) -> AlgorithmResult:
    return AlgorithmResult(
        name=data["name"],
        solution=set(data["solution"]),
        rounds=data["rounds"],
        phases={k: set(v) for k, v in data.get("phases", {}).items()},
        round_breakdown=dict(data.get("round_breakdown", {})),
        metadata=dict(data.get("metadata", {})),
    )


def run_config_to_dict(config: "RunConfig") -> dict:
    """JSON-ready dict for a :class:`repro.api.RunConfig`."""
    policy = config.policy
    return {
        "policy": None
        if policy is None
        else {
            "one_cut_radius": policy.one_cut_radius,
            "two_cut_radius": policy.two_cut_radius,
            "dimension": policy.dimension,
            "label": policy.label,
        },
        "mode": config.mode,
        "validate": config.validate,
        "solver": config.solver,
        "seed": config.seed,
    }


def run_config_from_dict(data: dict) -> "RunConfig":
    """Inverse of :func:`run_config_to_dict`."""
    from repro.api.config import RunConfig
    from repro.core.radii import RadiusPolicy

    policy = None
    if data.get("policy") is not None:
        policy = RadiusPolicy(**data["policy"])
    return RunConfig(
        policy=policy,
        mode=data.get("mode", "fast"),
        validate=data.get("validate", "valid"),
        solver=data.get("solver", "milp"),
        seed=data.get("seed", 0),
    )


def run_report_to_dict(report: "RunReport") -> dict:
    """JSON-ready dict for a :class:`repro.api.RunReport`."""
    return {
        "algorithm": report.algorithm,
        "problem": report.problem,
        "instance": {k: v for k, v in report.instance.items() if _jsonable(v)},
        "result": None if report.result is None else result_to_dict(report.result),
        "config": run_config_to_dict(report.config),
        "wall_time": report.wall_time,
        "valid": report.valid,
        "optimum_size": report.optimum_size,
        "ratio": report.ratio,
    }


def run_report_from_dict(data: dict) -> "RunReport":
    """Inverse of :func:`run_report_to_dict`."""
    from repro.api.config import RunReport

    result = None
    if data.get("result") is not None:
        result = result_from_dict(data["result"])
    return RunReport(
        algorithm=data["algorithm"],
        problem=data["problem"],
        instance=dict(data.get("instance", {})),
        result=result,
        config=run_config_from_dict(data.get("config", {})),
        wall_time=data.get("wall_time", 0.0),
        valid=data.get("valid"),
        optimum_size=data.get("optimum_size"),
        ratio=data.get("ratio"),
    )


def save_run_reports(reports: "Iterable[RunReport]", path: str | Path) -> None:
    """Persist a batch of run reports (e.g. a `solve_many` sweep)."""
    payload = [run_report_to_dict(r) for r in reports]
    Path(path).write_text(json.dumps(payload, indent=1))


def load_run_reports(path: str | Path) -> "list[RunReport]":
    """Inverse of :func:`save_run_reports`."""
    return [run_report_from_dict(d) for d in json.loads(Path(path).read_text())]


def _jsonable(value: object) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False


def save_rows(rows: list[dict], path: str | Path) -> None:
    """Persist a sweep table (list of uniform dicts)."""
    Path(path).write_text(json.dumps(rows, indent=1, default=str))


def load_rows(path: str | Path) -> list[dict]:
    return json.loads(Path(path).read_text())


def write_corpus(
    directory: str | Path,
    family_names: Iterable[str],
    sizes: Iterable[int],
    seeds: Iterable[int] = (0,),
) -> list[Path]:
    """Materialise a corpus of instances on disk; returns written paths."""
    from repro.graphs.families import get_family

    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    written = []
    for name in family_names:
        family = get_family(name)
        for size in sizes:
            for seed in seeds:
                graph = family.make(size, seed)
                meta = {"family": name, "size": size, "seed": seed}
                path = root / f"{name}_n{size}_s{seed}.json"
                save_graph(graph, path, meta)
                written.append(path)
    return written


def read_corpus(directory: str | Path) -> list[tuple[dict, nx.Graph]]:
    """Load every instance of a corpus as (meta, graph) pairs."""
    out = []
    for path in sorted(Path(directory).glob("*.json")):
        data = json.loads(path.read_text())
        out.append((data.get("meta", {}), graph_from_dict(data)))
    return out
