"""Instance and result persistence (JSON, no external deps).

Experiments should be replayable from artifacts: this module serialises
graphs, algorithm results, and sweep tables to a stable JSON layout.

* graphs — ``{"nodes": [...], "edges": [[u, v], ...], "meta": {...}}``
  with sorted nodes/edges so files are diff-able;
* results — name/solution/rounds/phases/metadata;
* corpora — a directory of instances addressed by family/size/seed,
  written by :func:`write_corpus` and reloaded by :func:`read_corpus`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

import networkx as nx

from repro.core.results import AlgorithmResult


def graph_to_dict(graph: nx.Graph, meta: dict | None = None) -> dict:
    """JSON-ready dict for a graph (integer-labelled)."""
    return {
        "nodes": sorted(graph.nodes),
        "edges": sorted([sorted(e) for e in graph.edges]),
        "meta": dict(meta or {}),
    }


def graph_from_dict(data: dict) -> nx.Graph:
    """Inverse of :func:`graph_to_dict`."""
    graph = nx.Graph()
    graph.add_nodes_from(data["nodes"])
    graph.add_edges_from((u, v) for u, v in data["edges"])
    return graph


def save_graph(graph: nx.Graph, path: str | Path, meta: dict | None = None) -> None:
    Path(path).write_text(json.dumps(graph_to_dict(graph, meta), indent=1))


def load_graph(path: str | Path) -> nx.Graph:
    return graph_from_dict(json.loads(Path(path).read_text()))


def result_to_dict(result: AlgorithmResult) -> dict:
    """JSON-ready dict for an algorithm result."""
    return {
        "name": result.name,
        "solution": sorted(result.solution, key=repr),
        "rounds": result.rounds,
        "phases": {k: sorted(v, key=repr) for k, v in result.phases.items()},
        "round_breakdown": dict(result.round_breakdown),
        "metadata": {k: v for k, v in result.metadata.items() if _jsonable(v)},
    }


def result_from_dict(data: dict) -> AlgorithmResult:
    return AlgorithmResult(
        name=data["name"],
        solution=set(data["solution"]),
        rounds=data["rounds"],
        phases={k: set(v) for k, v in data.get("phases", {}).items()},
        round_breakdown=dict(data.get("round_breakdown", {})),
        metadata=dict(data.get("metadata", {})),
    )


def _jsonable(value: object) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False


def save_rows(rows: list[dict], path: str | Path) -> None:
    """Persist a sweep table (list of uniform dicts)."""
    Path(path).write_text(json.dumps(rows, indent=1, default=str))


def load_rows(path: str | Path) -> list[dict]:
    return json.loads(Path(path).read_text())


def write_corpus(
    directory: str | Path,
    family_names: Iterable[str],
    sizes: Iterable[int],
    seeds: Iterable[int] = (0,),
) -> list[Path]:
    """Materialise a corpus of instances on disk; returns written paths."""
    from repro.graphs.families import get_family

    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    written = []
    for name in family_names:
        family = get_family(name)
        for size in sizes:
            for seed in seeds:
                graph = family.make(size, seed)
                meta = {"family": name, "size": size, "seed": seed}
                path = root / f"{name}_n{size}_s{seed}.json"
                save_graph(graph, path, meta)
                written.append(path)
    return written


def read_corpus(directory: str | Path) -> list[tuple[dict, nx.Graph]]:
    """Load every instance of a corpus as (meta, graph) pairs."""
    out = []
    for path in sorted(Path(directory).glob("*.json")):
        data = json.loads(path.read_text())
        out.append((data.get("meta", {}), graph_from_dict(data)))
    return out
