"""Minimum Vertex Cover variants of the paper's algorithms (Section 4).

The paper notes both main theorems extend to MVC:

* **Theorem 4.1 variant** — take all vertices of ``m_3.2``-local minimal
  1-cuts and *all* vertices of ``m_3.3``-local minimal 2-cuts (no
  interesting-vertex filter), then brute-force a minimum cover of the
  still-uncovered edges per residual component.
* **Theorem 4.4 variant** — a ``t``-approximation in constant rounds.
  The paper does not spell out its MVC algorithm; we implement the
  natural reading — output ``D₂`` of the twin-free graph, patched to a
  valid cover by adding the smaller-identifier endpoint of any edge both
  of whose endpoints were discarded (still 3 + O(1) rounds).  The patch
  set is empty on all the paper's families we generate (tests check
  this); EXPERIMENTS.md discusses the substitution.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.core.d2 import d2_set
from repro.core.radii import RadiusPolicy
from repro.core.results import AlgorithmResult
from repro.graphs.local_cuts import local_one_cuts, local_two_cuts
from repro.graphs.twins import remove_true_twins
from repro.graphs.util import weak_diameter
from repro.local_model.gather import rounds_for_radius
from repro.solvers.vc import is_vertex_cover, minimum_vertex_cover

Vertex = Hashable


def local_cuts_vertex_cover(
    graph: nx.Graph,
    policy: RadiusPolicy | None = None,
    *,
    t: int | None = None,
    mode: str = "fast",
) -> AlgorithmResult:
    """The Theorem 4.1 MVC variant (all local 2-cut vertices, then brute).

    Note: unlike domination, covering is about *edges*, so no twin
    reduction is applied (removing a twin removes edges that still need
    covering).

    ``mode="simulate"`` executes the per-node view-based decision through
    the message-passing simulator (see :func:`decide_vc_membership`);
    tests assert it matches ``mode="fast"``.
    """
    if policy is not None and t is not None:
        raise ValueError("give either a policy or t, not both")
    if policy is None:
        policy = RadiusPolicy.paper(t) if t is not None else RadiusPolicy.practical()
    if mode not in ("fast", "simulate"):
        raise ValueError(f"unknown mode {mode!r}")
    if graph.number_of_edges() == 0:
        return AlgorithmResult(name="local_cuts_vc", solution=set(), rounds=0)

    x_set = local_one_cuts(graph, policy.one_cut_radius)
    two_cut_vertices: set[Vertex] = set()
    for cut in local_two_cuts(graph, policy.two_cut_radius, minimal=True):
        two_cut_vertices |= set(cut)
    taken = x_set | two_cut_vertices

    uncovered = [
        (u, v) for u, v in graph.edges if u not in taken and v not in taken
    ]
    residual = graph.edge_subgraph(uncovered).copy() if uncovered else nx.Graph()
    brute: set[Vertex] = set()
    span = 0
    for component in nx.connected_components(residual):
        sub = residual.subgraph(component)
        brute |= minimum_vertex_cover(sub)
        span = max(span, weak_diameter(graph, component))

    solution = taken | brute
    view_radius = policy.detection_radius + span + 2
    if mode == "simulate":
        solution = _simulate_vc(graph, policy, view_radius)
    return AlgorithmResult(
        name="local_cuts_vc",
        solution=solution,
        rounds=rounds_for_radius(view_radius),
        phases={
            "local_1_cuts": set(x_set),
            "local_2_cuts": set(two_cut_vertices),
            "brute_force": set(brute),
        },
        metadata={
            "policy": policy.label,
            "uncovered_edges_after_cuts": len(uncovered),
            "residual_span": span,
        },
    )


def _simulate_vc(graph: nx.Graph, policy: RadiusPolicy, view_radius: int) -> set[Vertex]:
    """True LOCAL execution of the MVC variant: per-node view decisions."""
    from repro.local_model.gather import gather_views

    views, _ = gather_views(graph, view_radius)
    return {v for v in graph.nodes if decide_vc_membership(views[v], policy)}


def decide_vc_membership(view, policy: RadiusPolicy) -> bool:
    """Does the view's center join the vertex cover?  Pure view logic.

    Mirrors the fast pipeline: join when the center is a local 1-cut or
    sits in a minimal local 2-cut; otherwise reconstruct the residual
    uncovered-edge component around the center and join iff the
    deterministic exact cover of that component selects the center.
    Raises :class:`repro.core.algorithm1.InsufficientViewError` when the
    gathered radius cannot support a decision.
    """
    from repro.core.algorithm1 import InsufficientViewError
    from repro.graphs.local_cuts import is_local_one_cut as _one_cut
    from repro.graphs.local_cuts import is_local_two_cut as _two_cut
    from repro.graphs.util import ball as _ball

    me = view.center
    known = view.graph
    detection = policy.detection_radius
    complete = view.complete_radius
    if complete < detection:
        raise InsufficientViewError("view smaller than the detection radius")

    taken_cache: dict[int, bool] = {}

    def is_taken(w: int) -> bool:
        if w not in taken_cache:
            if view.dist.get(w, complete + 1) > complete - detection:
                raise InsufficientViewError(f"cannot decide cut status of {w}")
            if _one_cut(known, w, policy.one_cut_radius):
                taken_cache[w] = True
            else:
                taken_cache[w] = any(
                    _two_cut(known, u, w, policy.two_cut_radius, minimal=True)
                    for u in sorted(_ball(known, w, policy.two_cut_radius))
                    if u != w
                )
        return taken_cache[w]

    if is_taken(me):
        return True

    # Residual edges incident to me; grow the uncovered-edge component.
    def uncovered_neighbors(w: int) -> list[int]:
        return [x for x in known.neighbors(w) if not is_taken(x)]

    seeds = uncovered_neighbors(me)
    if not seeds:
        return False
    component = {me}
    frontier = [me]
    limit = complete - detection - 1
    while frontier:
        w = frontier.pop()
        if view.dist.get(w, limit + 1) > limit:
            raise InsufficientViewError("residual VC component leaves the trusted zone")
        for x in uncovered_neighbors(w):
            if x not in component:
                component.add(x)
                frontier.append(x)
    residual_edges = [
        (u, v)
        for u, v in known.subgraph(component).edges
        if not is_taken(u) and not is_taken(v)
    ]
    if not residual_edges:
        return False
    residual = nx.Graph(residual_edges)
    chosen = minimum_vertex_cover(residual)
    return me in chosen


def d2_vertex_cover(graph: nx.Graph) -> AlgorithmResult:
    """The Theorem 4.4 MVC variant: ``D₂``-based constant-round cover.

    Construction (our reading of the paper's one-line claim, see module
    docstring): keep every non-representative twin (a twin class is a
    clique — all but one member are needed by any cover of its inner
    edges), add ``D₂`` of the twin-free graph, then patch any remaining bare
    edge with its smaller-identifier endpoint.  All three steps are radius-2
    decisions, so the round count stays constant.
    """
    if graph.number_of_edges() == 0:
        return AlgorithmResult(name="d2_vc", solution=set(), rounds=0)
    reduced, mapping = remove_true_twins(graph)
    base = d2_set(reduced)
    twins = {v for v in graph.nodes if mapping[v] != v}
    solution = twins | base
    patch: set[Vertex] = set()
    for u, v in sorted(graph.edges, key=repr):
        if u not in solution and v not in solution:
            pick = min(u, v, key=repr)
            patch.add(pick)
            solution.add(pick)
    assert is_vertex_cover(graph, solution)
    return AlgorithmResult(
        name="d2_vc",
        solution=solution,
        rounds=4,
        phases={"d2": set(base), "twins": twins, "patch": patch},
        metadata={"patched_vertices": len(patch)},
    )
