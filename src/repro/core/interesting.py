"""Global interesting 2-cuts: the Section 5.3 vocabulary.

For *global* (not radius-bounded) 2-cuts, the paper says ``v`` is
**interesting** when there is a 2-cut ``c = {u, v}`` with

* ``N[v] ⊄ N[u]``, and
* at least two components of ``G − c`` containing a vertex non-adjacent
  to ``u``;

``v`` is then a *friend* of ``u``, the cut is an *interesting cut*, and
a vertex with only the second property is *almost-interesting*.  These
global notions drive the charging argument of Lemma 3.3; the algorithm
itself uses the local variants in :mod:`repro.graphs.local_cuts`.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.graphs.cuts import components_after_removal, minimal_two_cuts
from repro.graphs.util import closed_neighborhood

Vertex = Hashable


def _second_condition(graph: nx.Graph, u: Vertex, cut: frozenset[Vertex]) -> bool:
    """≥ 2 components of ``G − c`` each holding a vertex non-adjacent to u."""
    n_u = closed_neighborhood(graph, u)
    witnesses = 0
    for component in components_after_removal(graph, cut):
        if any(w not in n_u for w in component):
            witnesses += 1
            if witnesses >= 2:
                return True
    return False


def is_globally_interesting(graph: nx.Graph, v: Vertex, cut: frozenset[Vertex]) -> bool:
    """Is ``v`` interesting via the specific 2-cut ``cut = {u, v}``?"""
    if v not in cut or len(cut) != 2:
        return False
    (u,) = cut - {v}
    if closed_neighborhood(graph, v) <= closed_neighborhood(graph, u):
        return False
    return _second_condition(graph, u, cut)


def globally_interesting_vertices(graph: nx.Graph) -> set[Vertex]:
    """All vertices interesting via some global minimal 2-cut."""
    result: set[Vertex] = set()
    for cut in minimal_two_cuts(graph):
        for v in cut:
            if v not in result and is_globally_interesting(graph, v, cut):
                result.add(v)
    return result


def interesting_cuts(graph: nx.Graph) -> list[frozenset[Vertex]]:
    """Minimal 2-cuts ``{u, v}`` where ``v`` is interesting and a friend of
    ``u`` (i.e. at least one vertex of the cut is interesting via it)."""
    return [
        cut
        for cut in minimal_two_cuts(graph)
        if any(is_globally_interesting(graph, v, cut) for v in cut)
    ]


def almost_interesting_vertices(graph: nx.Graph) -> set[Vertex]:
    """Vertices satisfying only the component condition (Section 5.3)."""
    result: set[Vertex] = set()
    for cut in minimal_two_cuts(graph):
        for v in cut:
            (u,) = cut - {v}
            if _second_condition(graph, u, cut):
                result.add(v)
    return result


def covering_noncrossing_families(graph: nx.Graph) -> list[list[frozenset[Vertex]]]:
    """A Proposition 5.8-style cover: few non-crossing families of cuts.

    Selects, for every interesting vertex, one certifying cut — greedily
    preferring cuts that certify several vertices and cross few chosen
    cuts — then partitions the chosen cuts into non-crossing families.
    The paper proves 3 families always suffice for a suitable choice;
    tests check the greedy matches that bound on the paper's families.
    """
    from repro.graphs.cuts import crossing_two_cuts
    from repro.graphs.spqr import noncrossing_families

    cuts = minimal_two_cuts(graph)
    certified: dict[frozenset[Vertex], set[Vertex]] = {}
    for cut in cuts:
        holders = {v for v in cut if is_globally_interesting(graph, v, cut)}
        if holders:
            certified[cut] = holders

    uncovered = set().union(*certified.values()) if certified else set()
    chosen: list[frozenset[Vertex]] = []
    while uncovered:
        def score(cut: frozenset[Vertex]) -> tuple[int, int, str]:
            gain = len(certified[cut] & uncovered)
            crossings = sum(
                1 for other in chosen if crossing_two_cuts(graph, cut, other)
            )
            return (-gain, crossings, repr(sorted(cut, key=repr)))

        best = min((c for c in certified if certified[c] & uncovered), key=score)
        chosen.append(best)
        uncovered -= certified[best]
    return noncrossing_families(graph, chosen)


def friends(graph: nx.Graph, u: Vertex) -> set[Vertex]:
    """All friends of ``u``: partners of cuts through which ``u``'s partner
    is interesting (the charging argument walks these)."""
    result: set[Vertex] = set()
    for cut in minimal_two_cuts(graph):
        if u in cut:
            (v,) = cut - {u}
            if is_globally_interesting(graph, u, cut):
                result.add(v)
    return result
