"""Global interesting 2-cuts: the Section 5.3 vocabulary.

For *global* (not radius-bounded) 2-cuts, the paper says ``v`` is
**interesting** when there is a 2-cut ``c = {u, v}`` with

* ``N[v] ⊄ N[u]``, and
* at least two components of ``G − c`` containing a vertex non-adjacent
  to ``u``;

``v`` is then a *friend* of ``u``, the cut is an *interesting cut*, and
a vertex with only the second property is *almost-interesting*.  These
global notions drive the charging argument of Lemma 3.3; the algorithm
itself uses the local variants in :mod:`repro.graphs.local_cuts`.

All predicates run on kernel bitsets: the components of ``G − c`` are
masked flood fills, computed **once per cut** and shared between the two
orientations ``(u, v)`` and ``(v, u)`` (historically each orientation
re-derived them), and :func:`~repro.graphs.cuts.minimal_two_cuts` is
memoized per kernel so the enumeration itself is paid once per graph.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.graphs.cuts import minimal_two_cuts, removal_component_masks
from repro.graphs.kernel import GraphKernel, kernel_for

Vertex = Hashable


def _second_condition_masks(
    kernel: GraphKernel, u: int, component_masks: list[int]
) -> bool:
    """≥ 2 components of ``G − c`` each holding a vertex non-adjacent to u."""
    n_u = kernel.closed_bits[u]
    witnesses = 0
    for component in component_masks:
        if component & ~n_u:
            witnesses += 1
            if witnesses >= 2:
                return True
    return False


def _second_condition(graph: nx.Graph, u: Vertex, cut: frozenset[Vertex]) -> bool:
    """≥ 2 components of ``G − c`` each holding a vertex non-adjacent to u."""
    kernel = kernel_for(graph)
    return _second_condition_masks(
        kernel, kernel.index_of[u], removal_component_masks(graph, cut)
    )


def is_globally_interesting(graph: nx.Graph, v: Vertex, cut: frozenset[Vertex]) -> bool:
    """Is ``v`` interesting via the specific 2-cut ``cut = {u, v}``?"""
    if v not in cut or len(cut) != 2:
        return False
    (u,) = cut - {v}
    kernel = kernel_for(graph)
    closed = kernel.closed_bits
    i_u, i_v = kernel.index_of[u], kernel.index_of[v]
    if not closed[i_v] & ~closed[i_u]:  # N[v] ⊆ N[u]
        return False
    return _second_condition_masks(kernel, i_u, removal_component_masks(graph, cut))


def _interesting_orientations(
    graph: nx.Graph, kernel: GraphKernel, cut: frozenset[Vertex]
) -> list[Vertex]:
    """The vertices of ``cut`` that are interesting via it.

    The components of ``G − cut`` are computed lazily and at most once,
    shared across both orientations.
    """
    closed = kernel.closed_bits
    index_of = kernel.index_of
    a, b = cut
    i_a, i_b = index_of[a], index_of[b]
    holders: list[Vertex] = []
    components: list[int] | None = None
    for v, i_v, i_u in ((a, i_a, i_b), (b, i_b, i_a)):
        if not closed[i_v] & ~closed[i_u]:  # first condition fails
            continue
        if components is None:
            components = removal_component_masks(graph, cut)
        if _second_condition_masks(kernel, i_u, components):
            holders.append(v)
    return holders


def globally_interesting_vertices(graph: nx.Graph) -> set[Vertex]:
    """All vertices interesting via some global minimal 2-cut."""
    kernel = kernel_for(graph)
    result: set[Vertex] = set()
    for cut in minimal_two_cuts(graph):
        result.update(_interesting_orientations(graph, kernel, cut))
    return result


def interesting_cuts(graph: nx.Graph) -> list[frozenset[Vertex]]:
    """Minimal 2-cuts ``{u, v}`` where ``v`` is interesting and a friend of
    ``u`` (i.e. at least one vertex of the cut is interesting via it)."""
    kernel = kernel_for(graph)
    return [
        cut
        for cut in minimal_two_cuts(graph)
        if _interesting_orientations(graph, kernel, cut)
    ]


def almost_interesting_vertices(graph: nx.Graph) -> set[Vertex]:
    """Vertices satisfying only the component condition (Section 5.3)."""
    kernel = kernel_for(graph)
    index_of = kernel.index_of
    result: set[Vertex] = set()
    for cut in minimal_two_cuts(graph):
        components = removal_component_masks(graph, cut)
        a, b = cut
        if _second_condition_masks(kernel, index_of[b], components):
            result.add(a)
        if _second_condition_masks(kernel, index_of[a], components):
            result.add(b)
    return result


def covering_noncrossing_families(graph: nx.Graph) -> list[list[frozenset[Vertex]]]:
    """A Proposition 5.8-style cover: few non-crossing families of cuts.

    Selects, for every interesting vertex, one certifying cut — greedily
    preferring cuts that certify several vertices and cross few chosen
    cuts — then partitions the chosen cuts into non-crossing families.
    The paper proves 3 families always suffice for a suitable choice;
    tests check the greedy matches that bound on the paper's families.
    """
    from repro.graphs.cuts import crossing_two_cuts
    from repro.graphs.spqr import noncrossing_families

    kernel = kernel_for(graph)
    certified: dict[frozenset[Vertex], set[Vertex]] = {}
    for cut in minimal_two_cuts(graph):
        holders = set(_interesting_orientations(graph, kernel, cut))
        if holders:
            certified[cut] = holders

    uncovered = set().union(*certified.values()) if certified else set()
    chosen: list[frozenset[Vertex]] = []
    while uncovered:
        def score(cut: frozenset[Vertex]) -> tuple[int, int, str]:
            gain = len(certified[cut] & uncovered)
            crossings = sum(
                1 for other in chosen if crossing_two_cuts(graph, cut, other)
            )
            return (-gain, crossings, repr(sorted(cut, key=repr)))

        best = min((c for c in certified if certified[c] & uncovered), key=score)
        chosen.append(best)
        uncovered -= certified[best]
    return noncrossing_families(graph, chosen)


def friends(graph: nx.Graph, u: Vertex) -> set[Vertex]:
    """All friends of ``u``: partners of cuts through which ``u``'s partner
    is interesting (the charging argument walks these)."""
    result: set[Vertex] = set()
    for cut in minimal_two_cuts(graph):
        if u in cut:
            (v,) = cut - {u}
            if is_globally_interesting(graph, u, cut):
                result.add(v)
    return result
