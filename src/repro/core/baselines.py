"""Folklore baselines from Table 1 and the introduction.

* trees — take every vertex of degree ≥ 2 (3-approximation, 2 rounds;
  footnote 3: one round to count neighbors, one for the paper's model
  bookkeeping);
* ``K_{1,t}``-minor-free — take *all* vertices (0 rounds,
  t-approximation via ``MDS ≥ n/(Δ+1)``, footnote 4);
* bounded-diameter graphs — gather everything in ``diam(G)`` rounds and
  solve exactly (footnote 2: every vertex sees the whole graph and runs
  the same deterministic brute force);
* the paper's Table 1 row "outerplanar 5-approx in 2 rounds" [4] is
  generalised by Theorem 4.4 itself (``t = 3`` gives ``2t − 1 = 5``), so
  the outerplanar baseline is :func:`repro.core.d2.d2_dominating_set`.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.core.results import AlgorithmResult
from repro.solvers.opt_cache import optimum_solution

Vertex = Hashable


def degree_two_dominating_set(graph: nx.Graph) -> AlgorithmResult:
    """All vertices of degree ≥ 2 (components of size ≤ 2 take their min).

    On a tree with at least three vertices this is the folklore 3-approx
    (leaves are dominated by their support vertices, which have degree
    ≥ 2).  On general connected graphs the output is still a dominating
    set; the ratio guarantee is tree-specific.
    """
    if graph.number_of_nodes() == 0:
        return AlgorithmResult(name="degree_two", solution=set(), rounds=0)
    solution = {v for v in graph.nodes if graph.degree(v) >= 2}
    for component in nx.connected_components(graph):
        if not (solution & component):
            solution.add(min(component, key=repr))
    return AlgorithmResult(
        name="degree_two",
        solution=solution,
        rounds=2,
        phases={"degree_two": set(solution)},
    )


def take_all_vertices(graph: nx.Graph) -> AlgorithmResult:
    """The 0-round baseline: every vertex joins the dominating set.

    A t-approximation on ``K_{1,t}``-minor-free graphs (maximum degree
    ≤ t − 1, so ``MDS ≥ n/t``).
    """
    return AlgorithmResult(
        name="take_all",
        solution=set(graph.nodes),
        rounds=0,
        phases={"all": set(graph.nodes)},
    )


def full_gather_exact(
    graph: nx.Graph, solver: str = "milp", use_cache: bool = True
) -> AlgorithmResult:
    """Exact MDS after gathering the whole graph (footnote 2).

    Charges ``diam(G) + 1`` rounds — the cost of every vertex learning
    ``G`` entirely — and returns the canonical optimal set every vertex
    computes identically.  ``solver`` picks the exact backend:
    ``"milp"`` (scipy/HiGHS) or ``"bnb"`` (pure-Python branch and
    bound); both are deterministic and agree on the optimum size.
    ``use_cache`` mirrors ``RunConfig.opt_cache`` — ``False`` re-solves
    instead of reading the per-instance cache.
    """
    if graph.number_of_nodes() == 0:
        return AlgorithmResult(name="full_gather_exact", solution=set(), rounds=0)
    diameter = max(
        nx.diameter(graph.subgraph(c)) for c in nx.connected_components(graph)
    )
    if solver not in ("milp", "bnb"):
        raise ValueError(f"unknown solver {solver!r}; choose 'milp' or 'bnb'")
    # Served from the per-instance OPT cache, so running `exact` with
    # ratio validation solves each instance once, not twice.
    solution = set(optimum_solution(graph, "mds", solver, use_cache=use_cache))
    return AlgorithmResult(
        name="full_gather_exact",
        solution=solution,
        rounds=diameter + 1,
        phases={"exact": set(solution)},
        metadata={"diameter": diameter, "solver": solver},
    )
