"""Algorithm 2 (Theorem 4.3): the asymptotic-dimension parameterisation.

Same four steps as Algorithm 1, but the radii are derived from an
asymptotic-dimension bound ``d`` and a control function ``f`` instead of
from ``t``: it is a ``(c_3.2(d) + c_3.3(d) + 1)``-approximation on any
graph class of asymptotic dimension ``d`` with control ``f``, with a
round count depending on the largest ``K_{2,t}`` minor actually present
in the input (which the algorithm never needs to know).
"""

from __future__ import annotations

from typing import Callable

import networkx as nx

from repro.core.algorithm1 import algorithm1
from repro.core.radii import RadiusPolicy
from repro.core.results import AlgorithmResult


def algorithm2(
    graph: nx.Graph,
    dimension: int,
    control: Callable[[int], int],
    *,
    mode: str = "fast",
) -> AlgorithmResult:
    """Run Algorithm 2 with an explicit dimension/control pair.

    The ratio bound ``25(d+1) + 1`` is recorded in the result metadata;
    for ``d = 1`` it is the paper's 50.
    """
    policy = RadiusPolicy.from_asdim(dimension, control)
    result = algorithm1(graph, policy, mode=mode)
    result.name = "algorithm2"
    result.metadata["dimension"] = dimension
    return result
