"""Distributed greedy MDS: the classical non-constant-round reference.

The standard distributed adaptation of the greedy set-cover algorithm
(cf. the survey literature the paper cites): in each phase, a vertex
joins the dominating set when its *residual span* (number of
still-undominated vertices in its closed neighborhood) is a local
maximum among all vertices within distance 2, with identifier
tie-breaking.  The output matches the sequential greedy's quality class
(``O(log Δ)`` ratio) but needs ``Θ(span-levels)`` phases of constant
rounds each — a useful round-complexity contrast to the paper's
constant-round algorithms in Table 1's "reference" row.

Implemented both as a centralized reference (:func:`distributed_greedy_
dominating_set`) and as a true message protocol
(:class:`DistributedGreedyProtocol`); tests assert they agree.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.core.results import AlgorithmResult
from repro.graphs.kernel import iter_bits, kernel_for
from repro.local_model.algorithm import LocalAlgorithm
from repro.local_model.node import NodeContext

Vertex = Hashable


def distributed_greedy_dominating_set(graph: nx.Graph) -> AlgorithmResult:
    """Centralized reference for the locally-maximal greedy.

    Phases repeat until everything is dominated; within a phase every
    vertex whose (span, -uid) is maximal in its distance-2 ball joins
    simultaneously.  Rounds charged: 4 per phase, matching the message
    protocol (span exchange, maximality exchange, join announcement,
    domination-status sync).

    Runs on the graph's bitset kernel: distance-2 balls are precomputed
    once, spans live in a list, and after a phase only the vertices
    whose closed neighborhood intersects the newly-dominated set get
    their span recomputed — not all of ``graph.nodes``.  A vertex with
    span 0 can never be a strict (span, -uid) maximum over a span ≥ 1
    competitor, so the candidate scan is restricted to live vertices.
    Holding all n ball-2 masks costs O(n²/8) bytes on top of the
    kernel's closed bitsets (they are consulted for every live vertex
    every phase, so precomputing is the right trade within the
    kernel's 10³–10⁴ vertex target range).
    """
    kernel = kernel_for(graph)
    closed = kernel.closed_bits
    rank = [_rank(graph, v) for v in kernel.labels]
    ball2 = [kernel.ball_bits_from_mask(bits, 1) for bits in closed]

    undominated = kernel.full_mask
    spans = kernel.span_counts(undominated)
    live = undominated  # vertices with span > 0 (all of them, initially)
    chosen = 0
    phases = 0
    while undominated:
        phases += 1
        joiners = 0
        for i in iter_bits(live):
            key = (spans[i], -rank[i])
            if all(key >= (spans[u], -rank[u]) for u in iter_bits(ball2[i] & live)):
                joiners |= 1 << i
        if not joiners:  # safety: cannot happen while undominated ≠ ∅
            raise RuntimeError("greedy stalled")
        chosen |= joiners
        newly = kernel.closed_neighborhood_bits(joiners) & undominated
        undominated &= ~newly
        touched = kernel.closed_neighborhood_bits(newly) & live
        for i in iter_bits(touched):
            spans[i] = (closed[i] & undominated).bit_count()
            if not spans[i]:
                live &= ~(1 << i)
    solution = kernel.labels_of(chosen)
    return AlgorithmResult(
        name="distributed_greedy",
        solution=solution,
        rounds=4 * phases,
        phases={"greedy": set(solution)},
        metadata={"phases": phases},
    )


def _rank(graph: nx.Graph, v: Vertex) -> int:
    """Identifier rank for tie-breaking (labels are ints in our graphs)."""
    return v if isinstance(v, int) else hash(repr(v))


class DistributedGreedyProtocol(LocalAlgorithm):
    """Message-passing version of the locally-maximal greedy.

    Each phase is three rounds:

    1. broadcast (uid, my span);
    2. broadcast the best (span, -uid) seen among me and my neighbors —
       after which everyone knows the distance-2 maximum;
    3. broadcast whether I joined; receivers update domination status.

    A vertex halts (with its membership) once its closed neighborhood is
    fully dominated — it must linger while any neighbor is undominated
    because its span can still matter to others' maxima.
    """

    def on_init(self, ctx: NodeContext) -> None:
        ctx.state["member"] = False
        ctx.state["dominated"] = False
        ctx.state["phase_step"] = 0
        ctx.state["neighbor_dominated"] = {}
        ctx.state["span"] = 1 + ctx.degree
        ctx.broadcast(("span", ctx.uid, 1 + ctx.degree))

    def _my_span(self, ctx: NodeContext) -> int:
        own = 0 if ctx.state["dominated"] else 1
        return own + sum(
            0 if ctx.state["neighbor_dominated"].get(port, False) else 1
            for port in range(ctx.degree)
        )

    def on_round(self, ctx: NodeContext) -> None:
        step = ctx.state["phase_step"]

        if step == 0:
            # Received neighbor spans; compute & share the local max.
            best = (self._my_span(ctx), -ctx.uid)
            for _, (_, uid, span) in ctx.inbox.items():
                best = max(best, (span, -uid))
            ctx.state["best_seen"] = best
            ctx.broadcast(("best", best))
            ctx.state["phase_step"] = 1
            return

        if step == 1:
            # Distance-2 maximum = max of neighbors' bests and mine.
            best = ctx.state["best_seen"]
            for _, (_, neighbor_best) in ctx.inbox.items():
                best = max(best, neighbor_best)
            my_key = (self._my_span(ctx), -ctx.uid)
            joining = my_key == best and self._my_span(ctx) > 0
            if joining:
                ctx.state["member"] = True
                ctx.state["dominated"] = True
            ctx.broadcast(("joined", joining))
            ctx.state["phase_step"] = 2
            return

        # step == 2: absorb join announcements, start next phase or halt.
        for port, (_, joined) in ctx.inbox.items():
            if joined:
                ctx.state["dominated"] = True
            ctx.state["neighbor_dominated"][port] = (
                ctx.state["neighbor_dominated"].get(port, False) or joined
            )
        # A neighbor that joined dominates itself; track via messages:
        # we need neighbors' dominated-status for span, so share it.
        ctx.broadcast(("status", ctx.state["dominated"]))
        ctx.state["phase_step"] = 3

    def _absorb_status(self, ctx: NodeContext) -> None:
        for port, (_, dominated) in ctx.inbox.items():
            ctx.state["neighbor_dominated"][port] = dominated


class DistributedGreedyProtocolFull(DistributedGreedyProtocol):
    """Four-round-phase variant that also syncs domination status."""

    def on_round(self, ctx: NodeContext) -> None:
        step = ctx.state["phase_step"]
        if step == 3:
            self._absorb_status(ctx)
            if ctx.state["dominated"] and all(
                ctx.state["neighbor_dominated"].get(p, False)
                for p in range(ctx.degree)
            ):
                ctx.halt(ctx.state["member"])
                return
            ctx.state["phase_step"] = 0
            ctx.broadcast(("span", ctx.uid, self._my_span(ctx)))
            return
        super().on_round(ctx)


def run_distributed_greedy(graph: nx.Graph, ids=None) -> AlgorithmResult:
    """Execute the message protocol; returns the standard result record."""
    from repro.local_model.network import Network
    from repro.local_model.runtime import SynchronousRuntime

    network = Network(graph, ids)
    result = SynchronousRuntime(network, max_rounds=40 * graph.number_of_nodes() + 40).run(
        DistributedGreedyProtocolFull
    )
    chosen = {v for v, member in result.outputs.items() if member}
    return AlgorithmResult(
        name="distributed_greedy_protocol",
        solution=chosen,
        rounds=result.rounds,
        phases={"greedy": set(chosen)},
    )
