"""Radius constants of the paper's algorithms (``m_3.2``, ``m_3.3``, ``m_4.2``).

Algorithm 1 takes all vertices of ``m_3.2(C_t)``-local 1-cuts and all
``m_3.3(C_t)``-interesting vertices of ``m_3.3(C_t)``-local 2-cuts.  The
paper instantiates (Section 4, discussion after Lemma 4.2):

* ``m_3.2(C_t) = f(5) + 2``   (proof of Lemma 3.2),
* ``m_3.3(C_t) = f(11) + 5``  (proof of Lemma 3.3, Claim 5.13),
* running time ``3·max{f(5)+2, f(11)+5} + g(t) + 3`` with ``g`` the
  linear function of Ding [8, Lemma 6.3],

with control function ``f(r) = (5r + 18)·t`` for ``K_{2,t}``-minor-free
graphs ([3, Lemma 7.1]) — so the radii are ``43t + 2`` and ``73t + 5``:
astronomically conservative on simulation-scale graphs (any graph of
diameter below the radius degenerates to "gather all, brute force").

A :class:`RadiusPolicy` therefore carries explicit radii with three
constructors:

* :meth:`RadiusPolicy.paper` — the exact constants above (the proven
  50-approximation guarantee applies);
* :meth:`RadiusPolicy.from_asdim` — Algorithm 2's parameterisation by
  dimension ``d`` and an arbitrary control function;
* :meth:`RadiusPolicy.practical` — small radii for empirical work (the
  output is still always a valid dominating set; only the proven ratio
  bound is tied to the paper constants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graphs.asdim import control_function_k2t


@dataclass(frozen=True)
class RadiusPolicy:
    """Radii used by Algorithm 1/2 plus the approximation bookkeeping."""

    one_cut_radius: int
    """``m_3.2``: radius for local (minimal) 1-cut detection."""
    two_cut_radius: int
    """``m_3.3``: radius for local minimal 2-cuts / interesting vertices."""
    dimension: int = 1
    """Asymptotic dimension ``d`` assumed for the ratio bound."""
    label: str = "custom"

    def __post_init__(self) -> None:
        if self.one_cut_radius < 1 or self.two_cut_radius < 2:
            raise ValueError("need one_cut_radius >= 1 and two_cut_radius >= 2")
        if self.dimension < 0:
            raise ValueError("dimension must be non-negative")

    @property
    def detection_radius(self) -> int:
        """View radius needed for the cut/interesting decisions.

        A 2-cut partner sits within ``two_cut_radius`` of the deciding
        vertex and the cut's arena within another ``two_cut_radius``.
        """
        return max(self.one_cut_radius, 2 * self.two_cut_radius)

    @property
    def ratio_bound(self) -> int:
        """The paper's headline ratio, ``25(d+1)`` (= 50 at ``d = 1``).

        Note a small internal inconsistency in the paper: Theorem 4.1
        computes ``c_3.2(1) + c_3.3(1) + 1 = 50`` while Section 5 proves
        ``c_3.2(d) = 3(d+1)`` and ``c_3.3(d) = 22(d+1)``, whose sum plus
        one is 51 at ``d = 1``.  We report the quoted headline; either
        constant is far above anything measured (see EXPERIMENTS.md).
        The bound is only *proven* for the paper's radii.
        """
        return 25 * (self.dimension + 1)

    @classmethod
    def paper(cls, t: int) -> "RadiusPolicy":
        """The exact constants of Theorem 4.1 for ``K_{2,t}``-minor-free graphs."""
        f = lambda r: control_function_k2t(r, t)
        return cls(
            one_cut_radius=f(5) + 2,
            two_cut_radius=f(11) + 5,
            dimension=1,
            label=f"paper(t={t})",
        )

    @classmethod
    def from_asdim(cls, dimension: int, control: Callable[[int], int]) -> "RadiusPolicy":
        """Algorithm 2's policy: radii from a control function ``f``."""
        return cls(
            one_cut_radius=control(5) + 2,
            two_cut_radius=control(11) + 5,
            dimension=dimension,
            label=f"asdim(d={dimension})",
        )

    @classmethod
    def practical(cls, one_cut_radius: int = 2, two_cut_radius: int = 3) -> "RadiusPolicy":
        """Small radii for simulation-scale experiments."""
        return cls(
            one_cut_radius=one_cut_radius,
            two_cut_radius=two_cut_radius,
            dimension=1,
            label=f"practical({one_cut_radius},{two_cut_radius})",
        )
