"""Theorem 4.4: the 3-round ``(2t−1)``-approximation via ``D₂``.

For a graph without true twins let ``γ(v)`` be the minimum number of
vertices *different from v* needed to dominate ``N[v]``, and

    D₂(G) = { v : γ(v) ≥ 2 }
          = { v : there is no u ≠ v with N[v] ⊆ N[u] }.

Lemma 5.19 shows ``D₂`` dominates every twin-free graph, and
Corollary 5.20 bounds ``|D₂| ≤ (2t−1)·MDS(G)`` on ``K_{2,t}``-minor-free
graphs.  The LOCAL cost is 3 rounds: one to learn neighbor identifiers,
one to learn the neighbors' closed neighborhoods (which also runs the
twin election), one to settle ``γ(v) ≥ 2`` — note ``N[v] ⊆ N[u]``
forces ``u ∈ N[v]``, so the test is radius-2 information.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.core.results import AlgorithmResult
from repro.graphs.kernel import KernelView, kernel_for
from repro.graphs.twins import remove_true_twins

Vertex = Hashable

D2_ROUNDS = 3


def gamma(graph: nx.Graph, v: Vertex) -> int:
    """``γ(v)``: 1 when a single other vertex dominates ``N[v]``, else ≥ 2.

    Only the 1-versus-more distinction matters to the algorithm, so the
    return value is capped at 2.  ``N[v] ⊆ N[u]`` is one bitset subset
    test per neighbor on the graph's kernel (or a batched sorted-row
    scan on the packed backend).
    """
    kernel = kernel_for(graph)
    if kernel.backend == "packed":
        from repro.graphs.packed import gamma_packed

        return gamma_packed(kernel, kernel.index(v))
    closed = kernel.closed_bits
    i = kernel.index(v)
    n_v = closed[i]
    for j in kernel.neighbor_row(i):
        if not (n_v & ~closed[j]):
            return 1
    return 2


def d2_set(graph: nx.Graph) -> set[Vertex]:
    """``D₂(G)``: vertices whose closed neighborhood needs ≥ 2 dominators."""
    kernel = kernel_for(graph)
    if kernel.backend == "packed":
        from repro.graphs.packed import d2_members_packed

        return kernel.labels_of(d2_members_packed(kernel))
    closed = kernel.closed_bits
    members = 0
    for i in range(kernel.n):
        n_v = closed[i]
        if all(n_v & ~closed[j] for j in kernel.neighbor_row(i)):
            members |= 1 << i
    return kernel.labels_of(members)


def _d2_dominating_packed(kernel) -> AlgorithmResult:
    """The same twin-reduce → D₂ → per-component fix-up, on CSR arrays.

    ``induced`` keeps original labels in kernel (repr) order, so the
    reduced kernel's lowest index in a component *is* the repr-least
    vertex — the exact deterministic fix-up the int path applies.
    """
    from repro.graphs.packed import d2_members_packed, twin_survivor_indices

    survivors, _ = twin_survivor_indices(kernel)
    reduced = kernel.induced(survivors)
    members = d2_members_packed(reduced)
    solution = reduced.labels_of(members)
    for component in reduced.components_of_mask(reduced.full_mask):
        if not (component & members):
            solution.add(reduced.labels[int(component.indices()[0])])
    return AlgorithmResult(
        name="d2",
        solution=solution,
        rounds=D2_ROUNDS,
        phases={"d2": set(solution)},
        round_breakdown={"total": D2_ROUNDS},
        metadata={"twin_free_size": reduced.n},
    )


def d2_dominating_set(graph: nx.Graph) -> AlgorithmResult:
    """Theorem 4.4's algorithm: twin reduction, then output ``D₂``.

    Valid on every graph; the ``(2t−1)`` guarantee holds when the input
    is ``K_{2,t}``-minor-free.  Packed kernels and
    :class:`~repro.graphs.kernel.KernelView` instances run the whole
    pipeline on CSR arrays (no ``nx`` subgraphs, no mask table) with
    bit-identical output.
    """
    if graph.number_of_nodes() == 0:
        return AlgorithmResult(name="d2", solution=set(), rounds=0)
    kernel = kernel_for(graph)
    if kernel.backend == "packed":
        return _d2_dominating_packed(kernel)
    if isinstance(graph, KernelView):
        # A small view resolves to the int backend, but there is no
        # nx.Graph to take twin subgraphs of — lift the int kernel's
        # CSR into a packed kernel and run the array pipeline.
        from repro.graphs.packed import PackedGraphKernel

        return _d2_dominating_packed(
            PackedGraphKernel(kernel.labels, kernel.indptr, kernel.indices)
        )
    reduced, _ = remove_true_twins(graph)
    solution = d2_set(reduced)
    # A single vertex (after twin reduction a K_n collapses to one) has
    # gamma undefined; it must dominate itself.
    for component in nx.connected_components(reduced):
        if not (solution & component):
            solution.add(min(component, key=repr))
    return AlgorithmResult(
        name="d2",
        solution=solution,
        rounds=D2_ROUNDS,
        phases={"d2": set(solution)},
        round_breakdown={"total": D2_ROUNDS},
        metadata={"twin_free_size": reduced.number_of_nodes()},
    )
