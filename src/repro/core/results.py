"""Result records returned by the core algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

Vertex = Hashable


@dataclass
class AlgorithmResult:
    """Everything a run of a LOCAL MDS/MVC algorithm produced.

    ``rounds`` is the LOCAL-model round count charged to the run (view
    gathering plus constant overheads, itemised in ``round_breakdown``).
    ``phases`` itemises which rule admitted each vertex, for the
    per-phase analyses of Lemmas 3.2/3.3.
    """

    name: str
    solution: set[Vertex]
    rounds: int
    phases: dict[str, set[Vertex]] = field(default_factory=dict)
    round_breakdown: dict[str, int] = field(default_factory=dict)
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.solution)

    def phase_sizes(self) -> dict[str, int]:
        return {phase: len(members) for phase, members in self.phases.items()}
