"""Proposition 3.1: lifting local guarantees to global ones.

The paper includes (without using it in the final algorithm) a general
principle: if a LOCAL algorithm ``A`` is an ``α``-approximation *within
every ball* of a hereditary class ``C`` — formally, for every ``G ∈ C``
and ``S ⊆ V(G)``, ``|A(G) ∩ S| ≤ α · MDS(G, N^k[S])`` — and the host
class ``D`` has asymptotic dimension ``d`` (with control ``f``) and is
``(f(2k+3)+k+r)``-locally-``C``, then ``A`` is an
``α(d+1)``-approximation on all of ``D``.

This module makes the proposition executable:

* :func:`local_guarantee_holds` — check the premise
  ``|A(G) ∩ S| ≤ α · MDS(G, N^k[S])`` for a concrete run and a family
  of probe sets;
* :func:`lifted_bound` — the conclusion's ratio ``α(d+1)``;
* :func:`verify_lifting` — run an algorithm on a graph, build a cover
  with the requested parameters, and verify the proof's per-part
  charging inequality ``|A(G) ∩ B_i| ≤ α · MDS(G)`` part by part,
  returning a full report.

Tests instantiate it with the paper's own algorithms, confirming the
proposition's mechanics on the `K_{2,t}`-minor-free families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import networkx as nx

from repro.graphs.util import ball_of_set, r_components
from repro.solvers.exact import minimum_b_dominating_set, minimum_dominating_set

Vertex = Hashable


def lifted_bound(alpha: float, dimension: int) -> float:
    """The lifted approximation ratio ``α·(d+1)`` of Proposition 3.1."""
    if alpha <= 0 or dimension < 0:
        raise ValueError("alpha must be positive, dimension non-negative")
    return alpha * (dimension + 1)


def local_guarantee_holds(
    graph: nx.Graph,
    solution: set[Vertex],
    probes: Iterable[set[Vertex]],
    alpha: float,
    k: int = 1,
) -> bool:
    """Check the premise ``|A(G) ∩ S| ≤ α·MDS(G, N^k[S])`` on probe sets."""
    for probe in probes:
        if not probe:
            continue
        local_opt = minimum_b_dominating_set(graph, ball_of_set(graph, probe, k))
        if len(solution & probe) > alpha * len(local_opt) + 1e-9:
            return False
    return True


@dataclass
class LiftingReport:
    """Outcome of :func:`verify_lifting`."""

    alpha: float
    dimension: int
    cover_parts: int
    parts_checked: int
    per_part_ok: bool
    global_ratio: float
    lifted_ratio_bound: float

    @property
    def conclusion_holds(self) -> bool:
        return self.global_ratio <= self.lifted_ratio_bound + 1e-9


def verify_lifting(
    graph: nx.Graph,
    solution: set[Vertex],
    cover: Sequence[set[Vertex]],
    alpha: float,
    r: int,
    k: int = 1,
) -> LiftingReport:
    """Replay the Proposition 3.1 proof on a concrete run.

    ``cover`` is an asymptotic-dimension cover whose ``(2k+3)``-components
    play the role of the ``B ∈ B_i``.  For every component ``B`` the
    proof charges ``|A(G) ∩ B| ≤ α·MDS(G, N^k[B])``; summing within one
    part uses disjointness, summing over parts gives ``α(d+1)``.
    We verify the per-component inequality and the final ratio.
    """
    dimension = len(cover) - 1
    optimum = len(minimum_dominating_set(graph))
    per_part_ok = True
    parts_checked = 0
    for part in cover:
        for component in r_components(graph, part, 2 * k + 3):
            parts_checked += 1
            local_targets = ball_of_set(graph, component, k)
            local_opt = minimum_b_dominating_set(graph, local_targets)
            if len(solution & component) > alpha * len(local_opt) + 1e-9:
                per_part_ok = False
    global_ratio = len(solution) / optimum if optimum else 1.0
    return LiftingReport(
        alpha=alpha,
        dimension=dimension,
        cover_parts=len(cover),
        parts_checked=parts_checked,
        per_part_ok=per_part_ok,
        global_ratio=global_ratio,
        lifted_ratio_bound=lifted_bound(alpha, dimension),
    )


def probe_sets_from_balls(graph: nx.Graph, radius: int, count: int = 8) -> list[set[Vertex]]:
    """Deterministic probe sets: balls around evenly spread vertices."""
    nodes = sorted(graph.nodes, key=repr)
    if not nodes:
        return []
    step = max(1, len(nodes) // count)
    return [ball_of_set(graph, {v}, radius) for v in nodes[::step][:count]]
