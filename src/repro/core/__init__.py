"""The paper's algorithms: Theorems 4.1, 4.3, 4.4 and the MVC variants."""

from repro.core.algorithm1 import algorithm1, decide_membership, InsufficientViewError
from repro.core.algorithm2 import algorithm2
from repro.core.baselines import (
    degree_two_dominating_set,
    full_gather_exact,
    take_all_vertices,
)
from repro.core.d2 import d2_dominating_set, d2_set, gamma
from repro.core.interesting import (
    globally_interesting_vertices,
    interesting_cuts,
    almost_interesting_vertices,
)
from repro.core.radii import RadiusPolicy
from repro.core.results import AlgorithmResult
from repro.core.vertex_cover import d2_vertex_cover, local_cuts_vertex_cover

__all__ = [
    "algorithm1",
    "algorithm2",
    "decide_membership",
    "InsufficientViewError",
    "degree_two_dominating_set",
    "full_gather_exact",
    "take_all_vertices",
    "d2_dominating_set",
    "d2_set",
    "gamma",
    "globally_interesting_vertices",
    "interesting_cuts",
    "almost_interesting_vertices",
    "RadiusPolicy",
    "AlgorithmResult",
    "d2_vertex_cover",
    "local_cuts_vertex_cover",
]
