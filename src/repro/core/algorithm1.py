"""Algorithm 1 (Theorem 4.1): constant-approximation LOCAL MDS.

The algorithm, verbatim from Section 4:

1. replace ``G`` by its true-twin-less graph ``G⁻``;
2. add to ``S`` every vertex forming an ``m_3.2``-local minimal 1-cut;
3. add every ``m_3.3``-interesting vertex of an ``m_3.3``-local minimal
   2-cut;
4. add a brute-forced minimum set of ``G`` dominating ``G − N[S]``
   (Lemma 4.2 bounds the diameter of the residual components, so this is
   local; footnote 2 makes the per-component computation consistent).

Two execution modes:

* ``mode="fast"`` — a centralized computation of exactly the same set,
  with the LOCAL round count derived from the residual component
  diameters (what a distributed run would have charged);
* ``mode="simulate"`` — every vertex really gathers its view through the
  message-passing simulator and decides membership purely from that
  view; the driver picks the gathering radius (it can see the graph —
  the per-node decisions cannot).  Tests assert both modes agree.

The returned set is a valid dominating set for **every** radius policy;
the proven 50-approximation applies to ``RadiusPolicy.paper(t)``.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.core.radii import RadiusPolicy
from repro.core.results import AlgorithmResult
from repro.graphs.local_cuts import (
    interesting_vertices_of_cuts,
    is_interesting_vertex,
    is_local_one_cut,
    local_one_cuts,
    local_two_cuts,
)
from repro.graphs.kernel import iter_bits, kernel_for
from repro.graphs.twins import remove_true_twins
from repro.graphs.util import closed_neighborhood, weak_diameter_mask
from repro.local_model.gather import gather_views, rounds_for_radius
from repro.local_model.views import View
from repro.solvers.exact import minimum_b_dominating_set

Vertex = Hashable

TWIN_REDUCTION_ROUNDS = 2
"""LOCAL rounds charged for the true-twin reduction (learn the
neighbors' closed neighborhoods, elect the minimum-identifier
representative per twin class)."""


class InsufficientViewError(RuntimeError):
    """A per-node decision needed knowledge beyond the gathered radius."""


def _phase_sets(
    graph: nx.Graph, policy: RadiusPolicy
) -> tuple[set[Vertex], set[Vertex], set[Vertex], set[Vertex]]:
    """Compute (X, I, U, B) of steps 2–4 on the twin-free graph.

    Dominated/undominated/excluded statuses are pure bitset algebra on
    the kernel: ``N[X ∪ I]`` is one OR chain, and U-membership of a
    dominated non-taken vertex is ``N[v] ⊆ dominated``, a single
    AND-NOT test per candidate.
    """
    kernel = kernel_for(graph)
    x_set = local_one_cuts(graph, policy.one_cut_radius)
    cuts = local_two_cuts(graph, policy.two_cut_radius, minimal=True)
    i_set = interesting_vertices_of_cuts(graph, cuts, policy.two_cut_radius)
    taken_mask = kernel.bits_of(x_set) | kernel.bits_of(i_set)
    dominated_mask = kernel.closed_neighborhood_bits(taken_mask)
    undominated = kernel.labels_of(kernel.full_mask & ~dominated_mask)
    closed = kernel.closed_bits
    u_mask = 0
    for i in iter_bits(dominated_mask & ~taken_mask):
        if not closed[i] & ~dominated_mask:
            u_mask |= 1 << i
    return x_set, i_set, kernel.labels_of(u_mask), undominated


def _residual_components(
    graph: nx.Graph,
    x_set: set[Vertex],
    i_set: set[Vertex],
    u_set: set[Vertex],
    undominated: set[Vertex],
) -> list[tuple[set[Vertex], set[Vertex]]]:
    """Components of ``G − (X ∪ I ∪ U)`` that still contain undominated
    vertices, as ``(component, undominated ∩ component)`` pairs.

    Components are bitset flood fills; the kernel yields them lowest
    index first, which *is* the repr-order of each component's least
    vertex — the deterministic order the brute-force step relies on.
    """
    kernel = kernel_for(graph)
    residual = kernel.full_mask & ~(
        kernel.bits_of(x_set) | kernel.bits_of(i_set) | kernel.bits_of(u_set)
    )
    undominated_mask = kernel.bits_of(undominated)
    components = []
    for component in kernel.components_of_mask(residual):
        targets = undominated_mask & component
        if targets:
            components.append((kernel.labels_of(component), kernel.labels_of(targets)))
    return components


def _component_span(graph: nx.Graph, components: list[tuple[set[Vertex], set[Vertex]]]) -> int:
    """Max weak diameter over ``C ∪ N[B_C]`` — the knowledge footprint of
    the brute-force step (Lemma 4.2 bounds this on K_{2,t}-free graphs)."""
    kernel = kernel_for(graph)
    span = 0
    for component, targets in components:
        zone = kernel.bits_of(component) | kernel.union_closed_bits(targets)
        span = max(span, weak_diameter_mask(kernel, zone))
    return span


def algorithm1(
    graph: nx.Graph,
    policy: RadiusPolicy | None = None,
    *,
    t: int | None = None,
    mode: str = "fast",
) -> AlgorithmResult:
    """Run Algorithm 1 on ``graph``.

    Exactly one of ``policy`` or ``t`` should be given; ``t`` selects the
    paper constants ``RadiusPolicy.paper(t)``, no argument defaults to
    ``RadiusPolicy.practical()``.
    """
    if policy is not None and t is not None:
        raise ValueError("give either a policy or t, not both")
    if policy is None:
        policy = RadiusPolicy.paper(t) if t is not None else RadiusPolicy.practical()
    if mode not in ("fast", "simulate"):
        raise ValueError(f"unknown mode {mode!r}")
    if graph.number_of_nodes() == 0:
        return AlgorithmResult(name="algorithm1", solution=set(), rounds=0)

    reduced, _ = remove_true_twins(graph)
    x_set, i_set, u_set, undominated = _phase_sets(reduced, policy)
    components = _residual_components(reduced, x_set, i_set, u_set, undominated)

    brute: set[Vertex] = set()
    for _, targets in components:
        brute |= minimum_b_dominating_set(reduced, targets)

    span = _component_span(reduced, components)
    view_radius = policy.detection_radius + span + 2
    rounds = TWIN_REDUCTION_ROUNDS + rounds_for_radius(view_radius)

    solution = x_set | i_set | brute
    if mode == "simulate":
        solution = _simulate(reduced, policy, view_radius)

    return AlgorithmResult(
        name="algorithm1",
        solution=solution,
        rounds=rounds,
        phases={
            "local_1_cuts": set(x_set),
            "interesting_2_cuts": set(i_set),
            "brute_force": set(brute),
        },
        round_breakdown={
            "twin_reduction": TWIN_REDUCTION_ROUNDS,
            "view_gathering": rounds_for_radius(view_radius),
        },
        metadata={
            "policy": policy.label,
            "ratio_bound": policy.ratio_bound,
            "mode": mode,
            "twin_free_size": reduced.number_of_nodes(),
            "excluded_set_size": len(u_set),
            "undominated_after_cuts": len(undominated),
            "residual_components": len(components),
            "residual_span": span,
            "view_radius": view_radius,
        },
    )


def _simulate(reduced: nx.Graph, policy: RadiusPolicy, view_radius: int) -> set[Vertex]:
    """True LOCAL execution: gather views, each node decides independently."""
    views, _ = gather_views(reduced, view_radius)
    # identity_ids maps int-labelled vertices to themselves, so the uid
    # keyspace of `views` coincides with the vertex labels.
    return {v for v in reduced.nodes if decide_membership(views[v], policy)}


def decide_membership(view: View, policy: RadiusPolicy) -> bool:
    """Does the view's center join the dominating set?  Pure view logic.

    Mirrors steps 2–4 exactly, using only knowledge guaranteed exact by
    the view's complete radius; raises :class:`InsufficientViewError` if
    the gathered radius cannot support a required decision.
    """
    me = view.center
    known = view.graph
    detection = policy.detection_radius
    complete = view.complete_radius

    if complete < detection:
        raise InsufficientViewError("view smaller than the detection radius")

    if is_local_one_cut(known, me, policy.one_cut_radius):
        return True
    if is_interesting_vertex(known, me, policy.two_cut_radius):
        return True

    # Zones where derived statuses are exact (see module docstring):
    # X/I membership of w needs dist(w) + detection <= complete;
    # dominated-status needs one more hop; U-status one more again.
    status_limit = complete - detection
    dominated_limit = status_limit - 1
    u_limit = status_limit - 2

    cut_cache: dict[int, bool] = {}
    dominated_cache: dict[int, bool] = {}

    def in_cut_sets(w: int) -> bool:
        if w not in cut_cache:
            if view.dist.get(w, complete + 1) > status_limit:
                raise InsufficientViewError(f"cannot decide X/I status of {w}")
            cut_cache[w] = is_local_one_cut(known, w, policy.one_cut_radius) or (
                is_interesting_vertex(known, w, policy.two_cut_radius)
            )
        return cut_cache[w]

    def is_dominated(w: int) -> bool:
        if w not in dominated_cache:
            if view.dist.get(w, complete + 1) > dominated_limit:
                raise InsufficientViewError(f"cannot decide dominated status of {w}")
            dominated_cache[w] = any(
                in_cut_sets(x) for x in closed_neighborhood(known, w)
            )
        return dominated_cache[w]

    def in_u(w: int) -> bool:
        if view.dist.get(w, complete + 1) > u_limit:
            raise InsufficientViewError(f"cannot decide U status of {w}")
        return is_dominated(w) and all(
            is_dominated(x) for x in closed_neighborhood(known, w)
        )

    # Undominated vertices I might be asked to dominate sit in N[me].
    nearby_targets = [
        w for w in closed_neighborhood(known, me) if not is_dominated(w)
    ]
    if not nearby_targets:
        return False

    # Reconstruct the residual component around each nearby target and
    # solve its brute-force instance exactly as every other observer
    # would (deterministic solver on identical inputs).
    for seed in sorted(nearby_targets):
        component = _grow_residual_component(view, seed, in_cut_sets, in_u, u_limit)
        targets = {
            w for w in component if not is_dominated(w)
        }
        chosen = minimum_b_dominating_set(known, targets)
        if me in chosen:
            return True
    return False


def _grow_residual_component(
    view: View,
    seed: int,
    in_cut_sets,
    in_u,
    u_limit: int,
) -> set[int]:
    """BFS the residual component of ``seed`` inside the trusted zone."""
    if in_cut_sets(seed) or in_u(seed):
        raise InsufficientViewError("seed unexpectedly excluded from residual graph")
    component = {seed}
    frontier = [seed]
    while frontier:
        w = frontier.pop()
        if view.dist.get(w, u_limit + 1) > u_limit:
            raise InsufficientViewError(
                "residual component leaves the trusted zone; enlarge the view"
            )
        for x in view.graph.neighbors(w):
            if x in component:
                continue
            if in_cut_sets(x) or in_u(x):
                continue
            component.add(x)
            frontier.append(x)
    return component
