"""The shard executor that runs inside pool worker processes.

One task = one shard attempt.  The payload is a plain dict (cheap to
pickle, stable across interpreter restarts): embedded instance wires,
the algorithm list + config (solve) or spec list (simulate), the
attempt number, and the fault-injection spec, if any.  The worker
rebuilds each instance from its CSR wire (kernel pre-seeded), runs the
same :func:`repro.api.solve` / :func:`repro.api.simulate` calls the
batch runners use, and returns JSON-ready report dicts — the parent
dispatcher owns all disk writes.

Fault-injection sites fire **mid-shard**, after the first unit's report
has been produced, so an injected kill provably discards completed work
and the retry provably regenerates it byte-identically.
"""

from __future__ import annotations

from repro.api.runner import solve
from repro.api.simulation import simulate
from repro.io import (
    kernel_wire_from_dict,
    run_config_from_dict,
    run_report_to_dict,
    sim_report_to_dict,
    sim_spec_from_dict,
)
from repro.sweep.faultinject import FaultInjector, FaultSpec


def shard_task(
    manifest_dict: dict, shard_dict: dict, attempt: int, fault_dict: dict | None
) -> dict:
    """Build the picklable payload for one shard attempt."""
    task = {
        "kind": manifest_dict["kind"],
        "shard": shard_dict,
        "attempt": attempt,
        "faults": fault_dict,
    }
    if manifest_dict["kind"] == "solve":
        task["algorithms"] = manifest_dict["algorithms"]
        task["config"] = manifest_dict["config"]
    else:
        task["specs"] = manifest_dict["specs"]
    return task


def execute_shard(task: dict) -> tuple[str, list[dict]]:
    """Run one shard attempt; returns ``(shard_id, report dicts)``.

    Module-level so :class:`concurrent.futures.ProcessPoolExecutor` can
    pickle it by reference.
    """
    from repro.graphs.kernel import instance_from_wire

    shard = task["shard"]
    shard_id = shard["id"]
    attempt = task["attempt"]
    injector = FaultInjector(
        FaultSpec.from_dict(task["faults"]) if task["faults"] else None
    )

    if task["kind"] == "solve":
        config = run_config_from_dict(task["config"])
        units = [
            (entry, name) for entry in shard["instances"] for name in task["algorithms"]
        ]
    else:
        specs = [sim_spec_from_dict(s) for s in task["specs"]]
        units = [(entry, spec) for entry in shard["instances"] for spec in specs]

    reports: list[dict] = []
    graphs: dict[str, tuple] = {}
    for index, (entry, what) in enumerate(units):
        if index == min(1, len(units) - 1):
            # Mid-shard injection point: at least one unit's work exists
            # (for single-unit shards, before the shard returns).
            injector.maybe_kill(shard_id, attempt)
            injector.maybe_raise(shard_id, attempt)
            injector.maybe_hang(shard_id, attempt)
        # Graphs are cached by content digest (identical instances — a
        # deterministic family at two seeds — share one kernel), but the
        # meta is always the entry's own: provenance must never be
        # deduplicated along with the bytes.
        # instance_from_wire keeps big instances as KernelViews over
        # packed kernels — a million-node shard never builds an nx.Graph.
        graph = graphs.get(entry["digest"])
        if graph is None:
            graph = instance_from_wire(kernel_wire_from_dict(entry["wire"]))
            graphs[entry["digest"]] = graph
        meta = dict(entry.get("meta", {}))
        if task["kind"] == "solve":
            reports.append(run_report_to_dict(solve(graph, what, config, meta=meta)))
        else:
            reports.append(sim_report_to_dict(simulate(graph, what, meta=meta)))
    return shard_id, reports
