"""Crash-safe shard dispatch: retries, backoff, quarantine, resume.

The dispatcher executes a :class:`~repro.sweep.manifest.SweepManifest`'s
shards on a :class:`~concurrent.futures.ProcessPoolExecutor` and treats
every failure mode as survivable:

* a **task exception** inside a shard (a bug, an injected fault) marks
  that attempt failed and reschedules the shard;
* a **dead worker** (OOM kill, SIGKILL — surfacing as
  ``BrokenProcessPool``) poisons the whole pool: every in-flight shard
  is charged a failed attempt (the casualty cannot be attributed), the
  pool is rebuilt, and the shards rerun;
* a **per-shard timeout** abandons the pool (a hung worker cannot be
  cancelled), charges only the timed-out shard, and requeues the other
  in-flight shards for free;
* an exhausted shard (``max_attempts`` failures) is **quarantined**: a
  structured failure record lands in ``failures/`` and the run carries
  on — one poison shard never aborts an overnight sweep.

Retries back off exponentially with **seeded** jitter (a pure function
of the manifest seed, shard id, and attempt — chaos runs replay
exactly).  Each completed shard's reports are checkpointed atomically
*before* the next shard outcome is processed, so the run directory is
always a consistent prefix of the sweep: :func:`resume_sweep` re-reads
the manifest, verifies every checkpoint digest, and executes only what
is missing.  The merged report list is byte-identical to an
uninterrupted serial batch run modulo the sanctioned ``wall_time``
fields.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.api.config import RunConfig
from repro.sweep.faultinject import FaultInjector, injector_from_env
from repro.sweep.manifest import (
    MANIFEST_NAME,
    ShardSpec,
    SweepManifest,
    load_manifest,
    plan_sweep,
)
from repro.sweep.store import REPORTS_NAME, CheckpointStore
from repro.sweep.worker import execute_shard, shard_task

DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_BACKOFF_BASE = 0.05

#: Dispatch loop poll interval: how often deadlines are re-checked.
_POLL_S = 0.05


@dataclass
class ShardOutcome:
    """What happened to one shard during one dispatcher invocation."""

    id: str
    state: str
    """``"completed"`` or ``"quarantined"``."""
    attempts: int
    errors: list[str] = field(default_factory=list)


@dataclass
class SweepResult:
    """The outcome of one ``run_sweep``/``resume_sweep`` invocation."""

    run_dir: Path
    kind: str
    total_shards: int
    executed: list[str]
    """Shard ids executed (not served from prior checkpoints) this call."""
    completed: list[str]
    """All shard ids with a verified checkpoint, after this call."""
    quarantined: list[str]
    retries: int
    """Failed attempts that were rescheduled this call."""
    attempts: dict[str, int]
    """Attempts used per executed shard."""
    errors: dict[str, list[str]]
    """Per-shard failure messages accumulated this call."""
    reports_path: Path | None
    """``reports.json`` when every shard completed, else ``None``."""

    @property
    def complete(self) -> bool:
        return len(self.completed) == self.total_shards

    def report_dicts(self) -> list[dict]:
        """The merged, serial-order report dicts (requires completion)."""
        manifest = load_manifest(self.run_dir)
        return CheckpointStore(self.run_dir).merge_report_dicts(manifest)


class ShardDispatcher:
    """Executes shards with retry/backoff/quarantine (see module doc)."""

    def __init__(
        self,
        manifest: SweepManifest,
        store: CheckpointStore,
        *,
        workers: int | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        shard_timeout: float | None = None,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        sleep: Callable[[float], None] = time.sleep,
        injector: FaultInjector | None = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        self.manifest = manifest
        self.manifest_dict = manifest.to_dict()
        self.store = store
        self.workers = max(1, workers or 1)
        self.max_attempts = max_attempts
        self.shard_timeout = shard_timeout
        self.backoff_base = backoff_base
        self._sleep = sleep
        self.injector = injector if injector is not None else injector_from_env()
        self._fault_dict = (
            self.injector.spec.to_dict() if self.injector.active else None
        )
        self.retries = 0

    def backoff_delay(self, shard_id: str, attempt: int) -> float:
        """Seeded exponential backoff with jitter in [0.5x, 1x]."""
        rng = random.Random(f"{self.manifest.seed}:backoff:{shard_id}:{attempt}")
        return self.backoff_base * (2**attempt) * (0.5 + 0.5 * rng.random())

    def run(self, shards: Sequence[ShardSpec]) -> dict[str, ShardOutcome]:
        """Execute ``shards`` until each is completed or quarantined.

        Raises :class:`~repro.sweep.faultinject.SimulatedProcessDeath`
        when the (env-gated) fault harness injects a driver death —
        checkpoints written so far stay on disk, exactly like a real
        crash.
        """
        outcomes: dict[str, ShardOutcome] = {}
        errors: dict[str, list[str]] = {shard.id: [] for shard in shards}
        pending: deque[tuple[ShardSpec, int]] = deque(
            (shard, 0) for shard in shards
        )
        in_flight: dict = {}
        pool: ProcessPoolExecutor | None = None
        completed_now = 0
        try:
            while pending or in_flight:
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=self.workers)
                while pending and len(in_flight) < self.workers:
                    shard, attempt = pending.popleft()
                    future = pool.submit(
                        execute_shard,
                        shard_task(
                            self.manifest_dict,
                            shard.to_dict(),
                            attempt,
                            self._fault_dict,
                        ),
                    )
                    deadline = (
                        None
                        if self.shard_timeout is None
                        else time.monotonic() + self.shard_timeout
                    )
                    in_flight[future] = (shard, attempt, deadline)

                done, _ = wait(
                    set(in_flight), timeout=_POLL_S, return_when=FIRST_COMPLETED
                )
                pool_broken = False
                for future in sorted(done, key=lambda f: in_flight[f][0].id):
                    shard, attempt, _deadline = in_flight.pop(future)
                    try:
                        _shard_id, reports = future.result()
                    except BrokenProcessPool as error:
                        # The casualty cannot be attributed: every shard
                        # in flight on this pool is charged an attempt.
                        pool_broken = True
                        self._failed(
                            shard,
                            attempt,
                            f"worker crashed (pool broken): {error}",
                            pending,
                            outcomes,
                            errors,
                        )
                    except Exception as error:  # noqa: BLE001 — shard faults must not kill the sweep
                        self._failed(
                            shard,
                            attempt,
                            f"{type(error).__name__}: {error}",
                            pending,
                            outcomes,
                            errors,
                        )
                    else:
                        path = self.store.write_checkpoint(
                            shard.id, shard.digest, reports
                        )
                        self.injector.maybe_damage_checkpoint(
                            path, shard.id, attempt
                        )
                        self.store.clear_failure(shard.id)
                        outcomes[shard.id] = ShardOutcome(
                            shard.id, "completed", attempt + 1, errors[shard.id]
                        )
                        completed_now += 1
                        self.injector.maybe_die(completed_now)
                if pool_broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    continue

                if self.shard_timeout is not None and in_flight:
                    deadline_now = time.monotonic()
                    timed_out = [
                        (future, entry)
                        for future, entry in in_flight.items()
                        if entry[2] is not None and deadline_now >= entry[2]
                    ]
                    if timed_out:
                        # A hung worker cannot be cancelled: abandon the
                        # pool.  Only timed-out shards are charged; the
                        # other in-flight shards requeue for free.
                        charged = {future for future, _ in timed_out}
                        for future, (shard, attempt, _) in timed_out:
                            self._failed(
                                shard,
                                attempt,
                                f"shard timed out after {self.shard_timeout}s",
                                pending,
                                outcomes,
                                errors,
                            )
                        for future, (shard, attempt, _) in list(in_flight.items()):
                            if future not in charged:
                                pending.append((shard, attempt))
                        in_flight.clear()
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = None
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        return outcomes

    def _failed(
        self,
        shard: ShardSpec,
        attempt: int,
        message: str,
        pending: deque,
        outcomes: dict[str, ShardOutcome],
        errors: dict[str, list[str]],
    ) -> None:
        """Record one failed attempt: reschedule with backoff or quarantine."""
        errors[shard.id].append(f"attempt {attempt + 1}: {message}")
        if attempt + 1 >= self.max_attempts:
            self.store.write_failure(
                shard.id,
                {
                    "schema": 1,
                    "shard": shard.id,
                    "spec_digest": shard.digest,
                    "attempts": attempt + 1,
                    "errors": errors[shard.id],
                    "quarantined": True,
                },
            )
            outcomes[shard.id] = ShardOutcome(
                shard.id, "quarantined", attempt + 1, errors[shard.id]
            )
            return
        self.retries += 1
        self._sleep(self.backoff_delay(shard.id, attempt))
        pending.append((shard, attempt + 1))


def _dispatch(
    manifest: SweepManifest,
    run_dir: Path,
    pending: Sequence[ShardSpec],
    **options,
) -> SweepResult:
    store = CheckpointStore(run_dir)
    dispatcher = ShardDispatcher(manifest, store, **options)
    outcomes = dispatcher.run(pending)
    # Completion is re-proved from disk, so damage injected after a
    # checkpoint landed (or any latent corruption) is caught here, not
    # at the next resume.
    completed = store.completed_ids(manifest)
    quarantined = sorted(store.quarantined())
    reports_path = None
    if len(completed) == len(manifest.shards):
        reports_path = store.write_merged(manifest)
    return SweepResult(
        run_dir=run_dir,
        kind=manifest.kind,
        total_shards=len(manifest.shards),
        executed=sorted(outcome.id for outcome in outcomes.values()),
        completed=sorted(completed),
        quarantined=quarantined,
        retries=dispatcher.retries,
        attempts={
            outcome.id: outcome.attempts for outcome in outcomes.values()
        },
        errors={
            shard_id: outcome.errors
            for shard_id, outcome in outcomes.items()
            if outcome.errors
        },
        reports_path=reports_path,
    )


def run_sweep(
    instances: Iterable,
    *,
    run_dir: str | Path,
    algorithms: str | Sequence[str] | None = None,
    specs=None,
    config: RunConfig | None = None,
    shard_size: int = 1,
    seed: int = 0,
    **options,
) -> SweepResult:
    """Plan and execute a crash-safe sharded sweep under ``run_dir``.

    Accepts the batch runners' vocabulary (``instances`` ×
    ``algorithms``+``config``, or ``instances`` × ``specs``), plans
    instance-major shards of ``shard_size``, writes the durable
    manifest, and dispatches with retry/backoff/quarantine.  ``options``
    forward to :class:`ShardDispatcher` (``workers``, ``max_attempts``,
    ``shard_timeout``, ``backoff_base``, ``injector``, ``sleep``).

    Refuses a directory that already holds a manifest — that is a
    :func:`resume_sweep`, and silently replanning could orphan
    checkpoints.
    """
    run_dir = Path(run_dir)
    if (run_dir / MANIFEST_NAME).exists():
        raise ValueError(
            f"{run_dir} already contains a sweep manifest; "
            f"use resume_sweep / `repro sweep resume`"
        )
    manifest = plan_sweep(
        instances,
        algorithms=algorithms,
        specs=specs,
        config=config,
        shard_size=shard_size,
        seed=seed,
    )
    manifest.write(run_dir)
    return _dispatch(manifest, run_dir, list(manifest.shards), **options)


def resume_sweep(run_dir: str | Path, **options) -> SweepResult:
    """Resume an interrupted sweep: execute only what is not proved done.

    Re-reads the manifest, verifies every checkpoint against its shard
    digest (a torn, corrupted, or stale checkpoint is *not* done), and
    dispatches the remainder.  Previously quarantined shards get a
    fresh set of attempts — the fault may have been transient.
    Resuming a complete run just re-merges and returns.
    """
    run_dir = Path(run_dir)
    manifest = load_manifest(run_dir)
    store = CheckpointStore(run_dir)
    completed = store.completed_ids(manifest)
    for shard_id in sorted(store.quarantined()):
        store.clear_failure(shard_id)
    pending = [shard for shard in manifest.shards if shard.id not in completed]
    return _dispatch(manifest, run_dir, pending, **options)


def sweep_status(run_dir: str | Path) -> dict:
    """A JSON-ready snapshot of a run directory's progress."""
    run_dir = Path(run_dir)
    manifest = load_manifest(run_dir)
    store = CheckpointStore(run_dir)
    completed = store.completed_ids(manifest)
    quarantined = store.quarantined()
    pending = [
        shard.id
        for shard in manifest.shards
        if shard.id not in completed and shard.id not in quarantined
    ]
    return {
        "run_dir": str(run_dir),
        "kind": manifest.kind,
        "shards": len(manifest.shards),
        "instances": sum(len(shard.instances) for shard in manifest.shards),
        "completed": sorted(completed),
        "quarantined": {
            shard_id: {
                "attempts": record.get("attempts"),
                "errors": record.get("errors", []),
            }
            for shard_id, record in sorted(quarantined.items())
        },
        "pending": pending,
        "merged": (run_dir / REPORTS_NAME).exists(),
    }
