"""Shard planner and durable run manifest.

A sweep is a ``solve_many``/``simulate_many`` workload cut into
**instance-major shards**: shard ``k`` owns a contiguous slice of the
instance list, and every algorithm (or simulation spec) in the batch
rides along with it — exactly the batch runners' task shape, so the
concatenation of per-shard reports in shard order *is* the serial run's
report order.

The manifest is the run's durable root of trust.  It is written once,
atomically, when the run is planned, and carries everything needed to
re-execute any shard from a cold start:

* every instance as a :class:`~repro.graphs.kernel.KernelWire` CSR
  snapshot (base64 in JSON) plus its content digest — instances are
  embedded, never referenced, so resume works even if the generating
  code changed or the instance came from a mutated graph;
* the :class:`~repro.api.RunConfig` (solve) or the
  :class:`~repro.api.SimulationSpec` list (simulate) in their existing
  JSON round-trip shapes;
* one **spec digest** per shard, hashing the shard's instance digests +
  algorithm list/specs + config.  A checkpoint that does not carry the
  matching digest is not a completion of this shard (schema drift,
  tampering, or a torn write) and the shard re-runs.

``schema`` is versioned; a manifest with an unknown schema is refused
rather than misread.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.api.config import RunConfig
from repro.api.runner import _normalise_instances
from repro.api.simulation import SimulationSpec, _as_spec
from repro.graphs.kernel import kernel_for, wire_digest
from repro.io import (
    kernel_wire_from_dict,
    kernel_wire_to_dict,
    run_config_from_dict,
    run_config_to_dict,
    sim_spec_from_dict,
    sim_spec_to_dict,
    write_json_atomic,
)

MANIFEST_SCHEMA = 1
MANIFEST_NAME = "manifest.json"

KINDS = ("solve", "simulate")


class ManifestError(ValueError):
    """A run directory whose manifest is missing, torn, or incompatible."""


@dataclass(frozen=True)
class InstanceRef:
    """One embedded instance: metadata + wire snapshot + content digest."""

    meta: dict
    wire_dict: dict
    digest: str

    def to_dict(self) -> dict:
        return {"meta": self.meta, "digest": self.digest, "wire": self.wire_dict}

    @classmethod
    def from_dict(cls, data: dict) -> "InstanceRef":
        return cls(
            meta=dict(data.get("meta", {})),
            wire_dict=data["wire"],
            digest=data["digest"],
        )

    def materialise(self):
        """``(meta, instance)`` with the kernel pre-seeded from the wire.

        The instance is an ``nx.Graph`` below the packed threshold and a
        :class:`~repro.graphs.kernel.KernelView` at or above it — the
        same backend split every worker applies.
        """
        from repro.graphs.kernel import instance_from_wire

        return self.meta, instance_from_wire(kernel_wire_from_dict(self.wire_dict))


@dataclass(frozen=True)
class ShardSpec:
    """One unit of dispatch: a contiguous instance slice + the full
    algorithm/spec list, identified by a content digest."""

    id: str
    instances: tuple[InstanceRef, ...]
    digest: str

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "digest": self.digest,
            "instances": [ref.to_dict() for ref in self.instances],
        }


@dataclass(frozen=True)
class SweepManifest:
    """The planned run: shards plus the shared execution parameters."""

    kind: str
    shards: tuple[ShardSpec, ...]
    algorithms: tuple[str, ...] = ()
    config: RunConfig | None = None
    specs: tuple[SimulationSpec, ...] = ()
    seed: int = 0

    @property
    def shard_ids(self) -> list[str]:
        return [shard.id for shard in self.shards]

    def shard(self, shard_id: str) -> ShardSpec:
        for shard in self.shards:
            if shard.id == shard_id:
                return shard
        raise KeyError(shard_id)

    def to_dict(self) -> dict:
        data: dict = {
            "schema": MANIFEST_SCHEMA,
            "kind": self.kind,
            "seed": self.seed,
            "shards": [shard.to_dict() for shard in self.shards],
        }
        if self.kind == "solve":
            data["algorithms"] = list(self.algorithms)
            data["config"] = run_config_to_dict(self.config or RunConfig())
        else:
            data["specs"] = [sim_spec_to_dict(spec) for spec in self.specs]
        return data

    def write(self, run_dir: str | Path) -> Path:
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        path = run_dir / MANIFEST_NAME
        write_json_atomic(path, self.to_dict())
        return path


def _shard_digest(
    kind: str,
    shard_id: str,
    instance_digests: Sequence[str],
    payload: dict,
) -> str:
    """Content hash of everything that determines a shard's reports."""
    canonical = json.dumps(
        {
            "kind": kind,
            "id": shard_id,
            "instances": list(instance_digests),
            **payload,
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _instance_refs(instances: Iterable) -> list[InstanceRef]:
    refs = []
    for meta, graph in _normalise_instances(instances):
        wire = kernel_for(graph).to_wire()
        refs.append(
            InstanceRef(
                meta=dict(meta),
                wire_dict=kernel_wire_to_dict(wire),
                digest=wire_digest(wire),
            )
        )
    return refs


def plan_sweep(
    instances: Iterable,
    *,
    algorithms: str | Sequence[str] | None = None,
    specs=None,
    config: RunConfig | None = None,
    shard_size: int = 1,
    seed: int = 0,
) -> SweepManifest:
    """Deterministically partition a batch workload into shards.

    ``instances`` accepts exactly what :func:`repro.api.solve_many`
    accepts (bare graphs or ``(meta, graph)`` pairs).  Pass
    ``algorithms`` (+ optional ``config``) for a solve sweep or
    ``specs`` for a simulate sweep — one of the two, not both.  Shards
    are instance-major: shard ``k`` is the ``k``-th contiguous slice of
    ``shard_size`` instances together with the *whole* algorithm/spec
    list, so merging checkpoints in shard order reproduces the serial
    batch order exactly.
    """
    if (algorithms is None) == (specs is None):
        raise ValueError("plan a sweep with either 'algorithms' or 'specs'")
    if shard_size < 1:
        raise ValueError("shard_size must be positive")
    refs = _instance_refs(instances)
    if not refs:
        raise ValueError("cannot plan a sweep over zero instances")

    if algorithms is not None:
        kind = "solve"
        algorithm_list = (
            (algorithms,) if isinstance(algorithms, str) else tuple(algorithms)
        )
        if not algorithm_list:
            raise ValueError("cannot plan a solve sweep with no algorithms")
        config = config or RunConfig()
        payload = {
            "algorithms": list(algorithm_list),
            "config": run_config_to_dict(config),
        }
        spec_list: tuple[SimulationSpec, ...] = ()
    else:
        kind = "simulate"
        if isinstance(specs, (SimulationSpec, str)):
            specs = [specs]
        spec_list = tuple(_as_spec(spec) for spec in specs)
        if not spec_list:
            raise ValueError("cannot plan a simulate sweep with no specs")
        algorithm_list = ()
        config = None
        payload = {"specs": [sim_spec_to_dict(spec) for spec in spec_list]}

    shards = []
    for start in range(0, len(refs), shard_size):
        chunk = tuple(refs[start : start + shard_size])
        shard_id = f"s{start // shard_size:05d}"
        digest = _shard_digest(
            kind, shard_id, [ref.digest for ref in chunk], payload
        )
        shards.append(ShardSpec(id=shard_id, instances=chunk, digest=digest))
    return SweepManifest(
        kind=kind,
        shards=tuple(shards),
        algorithms=algorithm_list,
        config=config,
        specs=spec_list,
        seed=seed,
    )


def load_manifest(run_dir: str | Path) -> SweepManifest:
    """Read and validate ``<run_dir>/manifest.json``.

    Raises :class:`ManifestError` on a missing file, torn JSON, or an
    unknown schema version — a run directory we cannot prove we
    understand is never silently re-executed.
    """
    path = Path(run_dir) / MANIFEST_NAME
    if not path.exists():
        raise ManifestError(f"no sweep manifest at {path}")
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ManifestError(f"unreadable sweep manifest {path}: {error}") from error
    schema = data.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise ManifestError(
            f"manifest schema {schema!r} at {path} is not supported "
            f"(this build reads schema {MANIFEST_SCHEMA})"
        )
    kind = data.get("kind")
    if kind not in KINDS:
        raise ManifestError(f"manifest {path} has unknown kind {kind!r}")
    shards = tuple(
        ShardSpec(
            id=entry["id"],
            digest=entry["digest"],
            instances=tuple(
                InstanceRef.from_dict(ref) for ref in entry["instances"]
            ),
        )
        for entry in data["shards"]
    )
    if kind == "solve":
        return SweepManifest(
            kind=kind,
            shards=shards,
            algorithms=tuple(data.get("algorithms", ())),
            config=run_config_from_dict(data.get("config", {})),
            seed=data.get("seed", 0),
        )
    return SweepManifest(
        kind=kind,
        shards=shards,
        specs=tuple(sim_spec_from_dict(s) for s in data.get("specs", ())),
        seed=data.get("seed", 0),
    )
