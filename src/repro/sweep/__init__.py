"""Crash-safe sharded sweeps over the batch runners.

``run_sweep`` plans a ``solve_many``/``simulate_many`` workload into
checkpointed shards and executes them with retry/backoff/quarantine;
``resume_sweep`` picks an interrupted run back up from its manifest and
verified checkpoints; ``sweep_status`` reports progress.  The seeded
fault-injection harness (:mod:`repro.sweep.faultinject`) is env-gated
via ``REPRO_FAULT_INJECT``.
"""

from repro.sweep.dispatch import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_MAX_ATTEMPTS,
    ShardDispatcher,
    ShardOutcome,
    SweepResult,
    resume_sweep,
    run_sweep,
    sweep_status,
)
from repro.sweep.faultinject import (
    ENV_VAR as FAULT_ENV_VAR,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    SimulatedProcessDeath,
    injector_from_env,
    parse_fault_spec,
)
from repro.sweep.manifest import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    InstanceRef,
    ManifestError,
    ShardSpec,
    SweepManifest,
    load_manifest,
    plan_sweep,
)
from repro.sweep.store import (
    CHECKPOINT_SCHEMA,
    REPORTS_NAME,
    CheckpointCorruptError,
    CheckpointStore,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_MAX_ATTEMPTS",
    "FAULT_ENV_VAR",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "REPORTS_NAME",
    "CheckpointCorruptError",
    "CheckpointStore",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "InstanceRef",
    "ManifestError",
    "ShardDispatcher",
    "ShardOutcome",
    "ShardSpec",
    "SimulatedProcessDeath",
    "SweepManifest",
    "SweepResult",
    "injector_from_env",
    "load_manifest",
    "parse_fault_spec",
    "plan_sweep",
    "resume_sweep",
    "run_sweep",
    "sweep_status",
]
