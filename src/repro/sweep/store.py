"""Atomic checkpoint store + quarantine records for one run directory.

Layout under a run directory::

    run_dir/
      manifest.json            # the plan (written once, atomically)
      checkpoints/s00000.json  # one completed shard's reports
      failures/s00000.json     # one quarantined shard's failure record
      reports.json             # the merged batch (written by run/resume)

Every file goes through :func:`repro.io.write_json_atomic` (temp +
fsync + rename), so a crash at any instant leaves either no file or a
complete one — never a torn JSON.  Completion is *proved*, not assumed:
a checkpoint counts only if it parses, carries the current schema, and
its ``spec_digest`` matches the manifest shard's digest.  Anything else
(truncated file, bit rot, a checkpoint from a different plan) is
reported as invalid and the shard re-runs on resume.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.io import write_json_atomic
from repro.sweep.manifest import SweepManifest

CHECKPOINT_SCHEMA = 1
CHECKPOINT_DIR = "checkpoints"
FAILURE_DIR = "failures"
REPORTS_NAME = "reports.json"


class CheckpointCorruptError(RuntimeError):
    """A merge found a checkpoint that does not verify against the
    manifest; re-run ``repro sweep resume`` to re-execute the shard."""


class CheckpointStore:
    """Reads and writes one run directory's checkpoints and failures."""

    def __init__(self, run_dir: str | Path):
        self.run_dir = Path(run_dir)
        self.checkpoint_dir = self.run_dir / CHECKPOINT_DIR
        self.failure_dir = self.run_dir / FAILURE_DIR

    # -- checkpoints --------------------------------------------------------

    def checkpoint_path(self, shard_id: str) -> Path:
        return self.checkpoint_dir / f"{shard_id}.json"

    def write_checkpoint(
        self, shard_id: str, spec_digest: str, reports: list[dict]
    ) -> Path:
        """Persist one completed shard's reports (atomic, idempotent).

        A re-executed shard (resume, retry after corruption) simply
        renames over the old file — merge-time dedup is structural:
        one file per shard id, so a report can never appear twice.
        """
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        path = self.checkpoint_path(shard_id)
        write_json_atomic(
            path,
            {
                "schema": CHECKPOINT_SCHEMA,
                "shard": shard_id,
                "spec_digest": spec_digest,
                "reports": reports,
            },
        )
        return path

    def read_checkpoint(self, shard_id: str, spec_digest: str) -> list[dict] | None:
        """The shard's reports, or ``None`` unless the file *proves* it
        completed this exact shard (parses, schema matches, digest
        matches)."""
        path = self.checkpoint_path(shard_id)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(data, dict):
            return None
        if data.get("schema") != CHECKPOINT_SCHEMA:
            return None
        if data.get("shard") != shard_id or data.get("spec_digest") != spec_digest:
            return None
        reports = data.get("reports")
        return reports if isinstance(reports, list) else None

    def completed_ids(self, manifest: SweepManifest) -> set[str]:
        """Shard ids whose checkpoints verify against the manifest."""
        return {
            shard.id
            for shard in manifest.shards
            if self.read_checkpoint(shard.id, shard.digest) is not None
        }

    # -- quarantine ---------------------------------------------------------

    def failure_path(self, shard_id: str) -> Path:
        return self.failure_dir / f"{shard_id}.json"

    def write_failure(self, shard_id: str, record: dict) -> Path:
        """Persist a structured quarantine record (atomic)."""
        self.failure_dir.mkdir(parents=True, exist_ok=True)
        path = self.failure_path(shard_id)
        write_json_atomic(path, record)
        return path

    def clear_failure(self, shard_id: str) -> None:
        self.failure_path(shard_id).unlink(missing_ok=True)

    def quarantined(self) -> dict[str, dict]:
        """``shard id -> failure record`` for every quarantine file."""
        records: dict[str, dict] = {}
        if not self.failure_dir.is_dir():
            return records
        for path in sorted(self.failure_dir.glob("*.json")):
            try:
                records[path.stem] = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                # A torn failure record still marks the shard as
                # quarantined; resume clears and retries it anyway.
                records[path.stem] = {"shard": path.stem, "error": "unreadable record"}
        return records

    # -- merge --------------------------------------------------------------

    def merge_report_dicts(self, manifest: SweepManifest) -> list[dict]:
        """Concatenate every shard's reports in shard (= serial) order.

        Deduplication is structural: each shard id contributes exactly
        one verified checkpoint, and shards partition the instance list,
        so no report can be duplicated or dropped.  Raises
        :class:`CheckpointCorruptError` naming the first shard whose
        checkpoint is missing or does not verify.
        """
        merged: list[dict] = []
        for shard in manifest.shards:
            reports = self.read_checkpoint(shard.id, shard.digest)
            if reports is None:
                state = (
                    "corrupt or stale"
                    if self.checkpoint_path(shard.id).exists()
                    else "missing"
                )
                raise CheckpointCorruptError(
                    f"checkpoint for shard {shard.id} is {state}; "
                    f"run `repro sweep resume` on {self.run_dir}"
                )
            merged.extend(reports)
        return merged

    def write_merged(self, manifest: SweepManifest) -> Path:
        """Merge and persist ``reports.json`` (atomic); returns its path."""
        path = self.run_dir / REPORTS_NAME
        write_json_atomic(path, self.merge_report_dicts(manifest))
        return path
