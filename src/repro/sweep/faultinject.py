"""Seeded fault injection for the sweep subsystem (test/chaos harness).

Env-gated like ``REPRO_KERNEL_GUARD``: set ::

    REPRO_FAULT_INJECT="kill=1.0,corrupt=0.5,die=1.0,seed=7,attempts=1"

and every injection point in the dispatcher and its workers consults a
**seeded** decision function — the same spec and seed reproduce the
same faults, so a chaos run is as replayable as a clean one.  The knobs
(all probabilities in ``[0, 1]``, default 0 = never):

* ``kill``   — the worker process SIGKILLs itself mid-shard (after the
  first unit's report exists, so the kill provably discards work) —
  surfaces as ``BrokenProcessPool``/``WorkerCrashError`` in the parent;
* ``raise``  — the worker raises :class:`InjectedFault` mid-shard
  (an ordinary task exception, the retry path without pool rebuild);
* ``hang``   — the worker sleeps ``hang_s`` seconds mid-shard (drives
  the per-shard timeout + pool-abandon path);
* ``corrupt`` — after a checkpoint is written, garbage overwrites its
  tail (valid file length, invalid JSON);
* ``truncate`` — after a checkpoint is written, the file is cut in half
  (the torn-write shape atomic rename is meant to prevent);
* ``die``    — between shards (right after a checkpoint lands), the
  dispatcher raises :class:`SimulatedProcessDeath`, aborting the run
  the way ``kill -9`` of the whole driver would;
* ``seed``   — the decision RNG seed (default 0);
* ``attempts`` — inject only while ``attempt < attempts`` (default 1:
  first attempts fail, retries succeed — every chaos run terminates);
* ``hang_s`` — seconds a ``hang`` sleeps (default 30).

Decisions are pure functions of ``(seed, site, key, attempt)`` — no
global RNG state, per RPR003.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass, fields
from pathlib import Path

ENV_VAR = "REPRO_FAULT_INJECT"

_SITES = ("kill", "raise", "hang", "corrupt", "truncate", "die")


class InjectedFault(RuntimeError):
    """The fault harness raised inside a worker task (on purpose)."""


class SimulatedProcessDeath(RuntimeError):
    """The fault harness aborted the dispatcher between shards.

    The run directory is left exactly as a real driver death would
    leave it: manifest + the checkpoints written so far.  Recover with
    ``repro sweep resume``.
    """


@dataclass(frozen=True)
class FaultSpec:
    """Parsed injection probabilities (see the module docstring)."""

    kill: float = 0.0
    raise_: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    truncate: float = 0.0
    die: float = 0.0
    seed: int = 0
    attempts: int = 1
    hang_s: float = 30.0

    def probability(self, site: str) -> float:
        return getattr(self, "raise_" if site == "raise" else site)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(**data)


def parse_fault_spec(text: str | None) -> FaultSpec | None:
    """Parse the ``REPRO_FAULT_INJECT`` grammar; ``None``/empty = off."""
    if not text:
        return None
    values: dict = {}
    for part in filter(None, (p.strip() for p in text.split(","))):
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"fault knob {part!r} needs the form key=value")
        if key in _SITES:
            values["raise_" if key == "raise" else key] = float(value)
        elif key in ("seed", "attempts"):
            values[key] = int(value)
        elif key == "hang_s":
            values[key] = float(value)
        else:
            raise ValueError(
                f"unknown fault knob {key!r}; known: "
                f"{', '.join(_SITES + ('seed', 'attempts', 'hang_s'))}"
            )
    return FaultSpec(**values)


def spec_from_env(environ=os.environ) -> FaultSpec | None:
    """The env-gated spec (``None`` unless ``REPRO_FAULT_INJECT`` is set)."""
    return parse_fault_spec(environ.get(ENV_VAR))


class FaultInjector:
    """Seeded decision-maker behind every injection point.

    Construct with a :class:`FaultSpec` (or use :func:`injector_from_env`).
    A ``None`` spec makes every ``maybe_*`` a no-op, so production code
    calls the hooks unconditionally.
    """

    def __init__(self, spec: FaultSpec | None):
        self.spec = spec

    @property
    def active(self) -> bool:
        return self.spec is not None

    def should(self, site: str, key: str, attempt: int = 0) -> bool:
        """The seeded decision: fire ``site`` for ``key`` at ``attempt``?"""
        if self.spec is None or attempt >= self.spec.attempts:
            return False
        probability = self.spec.probability(site)
        if probability <= 0.0:
            return False
        # String seeds hash via SHA-512 in CPython — deterministic
        # across processes and runs, unlike object hash().
        rng = random.Random(f"{self.spec.seed}:{site}:{key}:{attempt}")
        return rng.random() < probability

    # -- worker-side sites (mid-shard) --------------------------------------

    def maybe_kill(self, shard_id: str, attempt: int) -> None:
        if self.should("kill", shard_id, attempt):
            os.kill(os.getpid(), signal.SIGKILL)

    def maybe_raise(self, shard_id: str, attempt: int) -> None:
        if self.should("raise", shard_id, attempt):
            raise InjectedFault(
                f"injected task failure in shard {shard_id} (attempt {attempt})"
            )

    def maybe_hang(self, shard_id: str, attempt: int) -> None:
        if self.should("hang", shard_id, attempt):
            time.sleep(self.spec.hang_s)

    # -- parent-side sites --------------------------------------------------

    def maybe_damage_checkpoint(
        self, path: str | Path, shard_id: str, attempt: int
    ) -> str | None:
        """Corrupt or truncate a just-written checkpoint file.

        Returns the damage kind (``"corrupt"``/``"truncate"``) or
        ``None``.  Damage is applied *after* the atomic rename — it
        models latent disk corruption, which resume must detect via the
        spec digest / JSON parse, not something atomic writes prevent.
        """
        path = Path(path)
        if self.should("corrupt", shard_id, attempt):
            data = path.read_bytes()
            keep = max(1, len(data) // 2)
            path.write_bytes(  # repro: ignore[RPR006] deliberate damage: models post-rename disk corruption
                data[:keep] + b"\x00garbage\x00" * 4
            )
            return "corrupt"
        if self.should("truncate", shard_id, attempt):
            data = path.read_bytes()
            path.write_bytes(  # repro: ignore[RPR006] deliberate damage: models a torn write
                data[: max(1, len(data) // 2)]
            )
            return "truncate"
        return None

    def maybe_die(self, completed_shards: int) -> None:
        """Simulate driver death between shards (after checkpoint ``k``)."""
        if self.should("die", f"after{completed_shards}", 0):
            raise SimulatedProcessDeath(
                f"injected driver death after {completed_shards} checkpointed "
                f"shard(s); resume with `repro sweep resume`"
            )


def injector_from_env(environ=os.environ) -> FaultInjector:
    """The env-gated injector (inactive unless ``REPRO_FAULT_INJECT`` set)."""
    return FaultInjector(spec_from_env(environ))
