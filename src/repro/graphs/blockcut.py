"""Block-cut trees (used in the proof of Lemma 3.2, Claim 5.3).

The block-cut tree ``T`` of a connected graph ``G`` is the bipartite graph
on ``B ∪ C`` where ``B`` is the set of maximal 2-connected blocks and
``C`` the set of cut vertices, with an edge ``(b, c)`` whenever ``c ∈ b``.
``T`` is a tree and all its leaves are blocks.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.graphs.cuts import cut_vertices

Vertex = Hashable

BLOCK = "block"
CUT = "cut"


def biconnected_blocks(graph: nx.Graph) -> list[frozenset[Vertex]]:
    """Return the maximal 2-connected blocks of ``graph``.

    Each block is a vertex set; bridges yield 2-vertex blocks and isolated
    vertices yield singleton blocks.
    """
    blocks = [frozenset(b) for b in nx.biconnected_components(graph)]
    covered: set[Vertex] = set().union(*blocks) if blocks else set()
    for v in graph.nodes:
        if v not in covered:
            blocks.append(frozenset({v}))
    blocks.sort(key=lambda b: repr(sorted(b, key=repr)))
    return blocks


def block_cut_tree(graph: nx.Graph) -> nx.Graph:
    """Build the block-cut tree of a connected graph.

    Nodes of the returned tree carry a ``kind`` attribute (``"block"`` or
    ``"cut"``); block nodes carry their vertex set in the ``members``
    attribute, cut nodes carry the cut vertex in ``vertex``.

    Raises ``ValueError`` on disconnected input (the paper always reduces
    to connected components first).
    """
    if graph.number_of_nodes() == 0:
        return nx.Graph()
    if not nx.is_connected(graph):
        raise ValueError("block_cut_tree requires a connected graph")

    tree = nx.Graph()
    cuts = cut_vertices(graph)
    for c in cuts:
        tree.add_node(("cut", c), kind=CUT, vertex=c)
    for i, block in enumerate(biconnected_blocks(graph)):
        node = ("block", i)
        tree.add_node(node, kind=BLOCK, members=block)
        for c in cuts & block:
            tree.add_edge(node, ("cut", c))
    return tree


def is_valid_block_cut_tree(graph: nx.Graph, tree: nx.Graph) -> bool:
    """Sanity-check a block-cut tree: it must be a tree whose leaves are blocks."""
    if tree.number_of_nodes() == 0:
        return graph.number_of_nodes() == 0
    if not nx.is_tree(tree):
        return False
    for node in tree.nodes:
        if tree.degree(node) <= 1 and tree.nodes[node]["kind"] == CUT and tree.number_of_nodes() > 1:
            return False
    block_union: set[Vertex] = set()
    for _node, data in tree.nodes(data=True):
        if data["kind"] == BLOCK:
            block_union |= set(data["members"])
    return block_union == set(graph.nodes)


def blocks_containing(tree: nx.Graph, vertex: Vertex) -> list[frozenset[Vertex]]:
    """Return the member sets of all blocks of the tree containing ``vertex``."""
    return [
        data["members"]
        for _, data in tree.nodes(data=True)
        if data["kind"] == BLOCK and vertex in data["members"]
    ]
