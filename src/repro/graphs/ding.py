"""Ding's structure for 3-connected ``K_{2,t}``-minor-free graphs (Sec. 5.4).

The paper outsources the structure of 3-connected ``K_{2,t}``-minor-free
graphs to Ding (arXiv:1702.01355): every such graph is an *augmentation*
of a bounded-size core — a graph obtained by gluing disjoint *fans* and
*strips* onto the core at their corners (Proposition 5.15).

This module provides executable versions of those notions:

* :func:`type_one_graph` / :func:`is_type_one` — graphs with a reference
  Hamiltonian cycle whose chords pairwise cross at most once, and
  crossing chords are "adjacent" on the cycle;
* :class:`Fan` and :class:`Strip` — the two building blocks, with their
  corners, centers, lengths and radii;
* :func:`augment` — glue fans/strips onto a core graph, enforcing Ding's
  corner-identification rule;
* :func:`strip_radius` — the radius notion used in the proof of
  Lemma 4.2 (max distance from any strip vertex to its corners).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import networkx as nx

from repro.graphs.util import distances_from

Vertex = Hashable


def _cycle_positions(cycle_order: Sequence[Vertex]) -> dict[Vertex, int]:
    return {v: i for i, v in enumerate(cycle_order)}


def chords_of(graph: nx.Graph, cycle_order: Sequence[Vertex]) -> list[tuple[Vertex, Vertex]]:
    """Edges of ``graph`` that are not edges of the reference cycle."""
    n = len(cycle_order)
    cycle_edges = {
        frozenset((cycle_order[i], cycle_order[(i + 1) % n])) for i in range(n)
    }
    return [
        (u, v) for u, v in graph.edges if frozenset((u, v)) not in cycle_edges
    ]


def chords_cross(
    cycle_order: Sequence[Vertex], chord1: tuple[Vertex, Vertex], chord2: tuple[Vertex, Vertex]
) -> bool:
    """Return whether two non-incident chords cross on the reference cycle.

    Chords ``ab`` and ``cd`` cross when the endpoints interleave around
    the cycle (``a, c, b, d`` in cyclic order).
    """
    pos = _cycle_positions(cycle_order)
    a, b = sorted((pos[chord1[0]], pos[chord1[1]]))
    c, d = pos[chord2[0]], pos[chord2[1]]
    if len({a, b, c, d}) < 4:
        return False
    inside_c = a < c < b
    inside_d = a < d < b
    return inside_c != inside_d


def is_type_one(graph: nx.Graph, cycle_order: Sequence[Vertex]) -> bool:
    """Check Ding's type-I condition for ``graph`` with the given cycle.

    Requirements: ``cycle_order`` is a Hamiltonian cycle of the graph;
    each chord crosses at most one other chord; and when chords ``ab``
    and ``cd`` cross, either both ``ac`` and ``bd`` or both ``ad`` and
    ``bc`` are cycle edges.
    """
    n = len(cycle_order)
    if set(cycle_order) != set(graph.nodes) or n != graph.number_of_nodes():
        return False
    for i in range(n):
        if not graph.has_edge(cycle_order[i], cycle_order[(i + 1) % n]):
            return False
    pos = _cycle_positions(cycle_order)
    cycle_adjacent = lambda u, v: (pos[u] - pos[v]) % n in (1, n - 1)

    chords = chords_of(graph, cycle_order)
    for i, chord1 in enumerate(chords):
        crossings = []
        for j, chord2 in enumerate(chords):
            if i != j and chords_cross(cycle_order, chord1, chord2):
                crossings.append(chord2)
        if len(crossings) > 1:
            return False
        for chord2 in crossings:
            a, b = chord1
            c, d = chord2
            pattern1 = cycle_adjacent(a, c) and cycle_adjacent(b, d)
            pattern2 = cycle_adjacent(a, d) and cycle_adjacent(b, c)
            if not (pattern1 or pattern2):
                return False
    return True


def type_one_graph(n: int, chord_pairs: Sequence[tuple[int, int]] = ()) -> nx.Graph:
    """Build a type-I graph on cycle ``0..n−1`` with the given chords.

    Raises ``ValueError`` if the requested chords violate the type-I
    condition.
    """
    graph = nx.cycle_graph(n)
    for u, v in chord_pairs:
        graph.add_edge(u, v)
    if not is_type_one(graph, list(range(n))):
        raise ValueError("requested chords violate the type-I condition")
    return graph


@dataclass(frozen=True)
class Fan:
    """A fan building block: apex (center) + triangulated path.

    ``corners = (center, first, last)`` in the paper's notation
    ``(a, b, c)`` with ``a`` the shared endpoint of the two boundary
    edges.
    """

    graph: nx.Graph
    center: Vertex
    first: Vertex
    last: Vertex

    @property
    def corners(self) -> tuple[Vertex, Vertex, Vertex]:
        return (self.center, self.first, self.last)

    @property
    def length(self) -> int:
        """Number of chords = path vertices adjacent to the center − 2."""
        return max(0, self.graph.degree(self.center) - 2)


@dataclass(frozen=True)
class Strip:
    """A strip building block with four corners ``(a, b, c, d)``.

    Built as a ladder-like type-I graph; ``a, b`` sit on one end rung and
    ``c, d`` on the other.
    """

    graph: nx.Graph
    corners: tuple[Vertex, Vertex, Vertex, Vertex]


def make_fan(length: int, label_offset: int = 0) -> Fan:
    """Fan of the given length (number of chords ≥ 1).

    Vertices ``offset .. offset + length + 2``: the center is ``offset``,
    the path is ``offset+1 .. offset+length+2``.
    """
    if length < 1:
        raise ValueError("fan length must be >= 1")
    path_len = length + 2
    graph = nx.Graph()
    center = label_offset
    path_vertices = [label_offset + 1 + i for i in range(path_len)]
    for i, v in enumerate(path_vertices):
        graph.add_edge(center, v)
        if i > 0:
            graph.add_edge(path_vertices[i - 1], v)
    return Fan(graph=graph, center=center, first=path_vertices[0], last=path_vertices[-1])


def make_strip(rungs: int, label_offset: int = 0, *, crossed: bool = False) -> Strip:
    """Ladder strip with the given number of rungs (≥ 2).

    With ``crossed=True`` every other rung is replaced by the allowed
    crossing-chord pattern (the X-pattern the type-I condition permits),
    exercising the crossing branch of :func:`is_type_one`.
    Corners are ``(u_0, v_0, u_last, v_last)``.
    """
    if rungs < 2:
        raise ValueError("strip needs at least 2 rungs")
    graph = nx.Graph()
    top = [label_offset + i for i in range(rungs)]
    bottom = [label_offset + rungs + i for i in range(rungs)]
    for i in range(rungs - 1):
        graph.add_edge(top[i], top[i + 1])
        graph.add_edge(bottom[i], bottom[i + 1])
    for i in range(rungs):
        if crossed and 0 < i < rungs - 1 and i % 2 == 0:
            graph.add_edge(top[i - 1], bottom[i])
            graph.add_edge(top[i], bottom[i - 1])
        else:
            graph.add_edge(top[i], bottom[i])
    return Strip(graph=graph, corners=(top[0], bottom[0], top[-1], bottom[-1]))


def strip_radius(strip: Strip) -> int:
    """Radius of a strip: max distance from any vertex to the corner set.

    This is the quantity Lemma 4.2 bounds — long strips force local
    2-cuts.
    """
    best = 0
    corner_dists = [distances_from(strip.graph, c) for c in strip.corners]
    for v in strip.graph.nodes:
        best = max(best, max(d[v] for d in corner_dists))
    return best


@dataclass
class Attachment:
    """A fan or strip together with the core vertices its corners glue to."""

    piece: Fan | Strip
    glue: dict[Vertex, Vertex] = field(default_factory=dict)
    """Maps piece corners to core vertices (must be injective per piece)."""


def augment(core: nx.Graph, attachments: Sequence[Attachment]) -> nx.Graph:
    """Glue fans/strips onto ``core`` at their corners (Ding augmentation).

    Ding's rule: distinct pieces may share a core vertex only when one of
    the sharing corners is a fan center (the other a fan center or strip
    corner).  Piece-internal labels are relocated to fresh integers above
    the core's labels; glued corners take the core vertex's label.

    Returns the augmented graph.
    """
    graph = core.copy()
    used_core: dict[Vertex, list[tuple[Attachment, Vertex]]] = {}
    next_label = (
        max((v for v in core.nodes if isinstance(v, int)), default=-1) + 1
    )
    for attachment in attachments:
        piece = attachment.piece
        corners = set(piece.corners if isinstance(piece, Strip) else piece.corners)
        glue = attachment.glue
        if not set(glue) <= corners:
            raise ValueError("can only glue pieces at their corners")
        if len(set(glue.values())) != len(glue):
            raise ValueError("a piece's corners must glue to distinct core vertices")
        for corner, core_vertex in glue.items():
            if core_vertex not in core.nodes:
                raise ValueError(f"core vertex {core_vertex!r} does not exist")
            for other_attachment, other_corner in used_core.get(core_vertex, []):
                is_fan_center = (
                    isinstance(piece, Fan) and corner == piece.center
                )
                other_piece = other_attachment.piece
                other_is_fan_center = (
                    isinstance(other_piece, Fan) and other_corner == other_piece.center
                )
                if not (is_fan_center or other_is_fan_center):
                    raise ValueError(
                        "two pieces may share a core vertex only via a fan center"
                    )
            used_core.setdefault(core_vertex, []).append((attachment, corner))

        relabel: dict[Vertex, Vertex] = {}
        for v in piece.graph.nodes:
            if v in glue:
                relabel[v] = glue[v]
            else:
                relabel[v] = next_label
                next_label += 1
        for u, v in piece.graph.edges:
            graph.add_edge(relabel[u], relabel[v])
    return graph


def fan_flower(petals: int, fan_length: int) -> nx.Graph:
    """A core triangle with ``petals`` fans glued by their centers.

    A small, fully deterministic Ding augmentation used across tests and
    benchmarks.
    """
    core = nx.complete_graph(3)
    attachments = []
    offset = 100
    for i in range(petals):
        fan = make_fan(fan_length, label_offset=offset + i * (fan_length + 10))
        attachments.append(Attachment(piece=fan, glue={fan.center: i % 3}))
    return augment(core, attachments)
