"""Neighborhood, ball, and diameter utilities shared across the library.

The paper's notation (Section 2):

* ``N[v]`` — the closed neighborhood of ``v``;
* ``N^r[v]`` — all vertices at distance at most ``r`` from ``v``;
* *weak diameter* of ``S ⊆ V(G)`` — the largest distance **in G** between
  two vertices of ``S`` (distances are not restricted to ``G[S]``);
* an *r-component* of ``S`` — a maximal subset of ``S`` in which consecutive
  vertices can be linked by hops of length at most ``r`` in ``G``
  (equivalently: a connected component of the r-th power of ``G`` restricted
  to ``S``);
* ``S`` is *D-bounded* when its weak diameter is at most ``D``.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable

import networkx as nx

from repro.graphs.kernel import GraphKernel, iter_bits, kernel_for

Vertex = Hashable


def closed_neighborhood(graph: nx.Graph, v: Vertex) -> set[Vertex]:
    """Return ``N[v]``, the closed neighborhood of ``v`` in ``graph``."""
    result = set(graph.neighbors(v))
    result.add(v)
    return result


def closed_neighborhood_of_set(graph: nx.Graph, vertices: Iterable[Vertex]) -> set[Vertex]:
    """Return ``N[S] = S ∪ {u : u adjacent to some v in S}``."""
    kernel = kernel_for(graph)
    return kernel.labels_of(kernel.union_closed_bits(vertices))


def ball(graph: nx.Graph, center: Vertex, radius: int) -> set[Vertex]:
    """Return ``N^r[center]``: all vertices at distance at most ``radius``.

    Implemented as a frontier BFS on the graph's bitset kernel;
    ``radius = 0`` returns ``{center}`` and negative radii return the
    empty set.
    """
    if radius < 0:
        return set()
    if radius == 0:
        return {center}
    return kernel_for(graph).ball_labels(center, radius)


def ball_of_set(graph: nx.Graph, centers: Iterable[Vertex], radius: int) -> set[Vertex]:
    """Return ``N^r[S] = ∪_{v∈S} N^r[v]`` via one multi-source frontier BFS."""
    if radius < 0:
        return set()
    if radius == 0:
        return set(centers)
    return kernel_for(graph).ball_labels_of_set(centers, radius)


def induced_ball(graph: nx.Graph, center: Vertex, radius: int) -> nx.Graph:
    """Return the induced subgraph ``G[N^r[center]]``."""
    return graph.subgraph(ball(graph, center, radius)).copy()


def induced_ball_of_set(graph: nx.Graph, centers: Iterable[Vertex], radius: int) -> nx.Graph:
    """Return the induced subgraph ``G[∪_{v∈S} N^r[v]]``."""
    return graph.subgraph(ball_of_set(graph, centers, radius)).copy()


def distances_from(graph: nx.Graph, source: Vertex, cutoff: int | None = None) -> dict[Vertex, int]:
    """Return BFS distances from ``source``, optionally truncated at ``cutoff``."""
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        vertex = frontier.popleft()
        d = dist[vertex]
        if cutoff is not None and d == cutoff:
            continue
        for neighbor in graph.neighbors(vertex):
            if neighbor not in dist:
                dist[neighbor] = d + 1
                frontier.append(neighbor)
    return dist


def weak_diameter_mask(kernel: GraphKernel, mask: int) -> int:
    """Weak diameter of the vertex bitset ``mask`` (mask-level core).

    From each source bit, frontiers expand by OR-ing closed-neighborhood
    rows until every target bit is seen; the expansion count when the
    last target lands is the source's eccentricity within the set.
    Raises ``ValueError`` on a pair separated across components.
    """
    if mask.bit_count() <= 1:
        return 0
    closed = kernel.closed_bits
    best = 0
    for i in iter_bits(mask):
        seen = 1 << i
        frontier = seen
        missing = mask & ~seen
        depth = 0
        while missing:
            reach = 0
            for j in iter_bits(frontier):
                reach |= closed[j]
            frontier = reach & ~seen
            if not frontier:
                u = kernel.labels[(missing & -missing).bit_length() - 1]
                raise ValueError(
                    f"vertices {kernel.labels[i]!r} and {u!r} are disconnected in G"
                )
            seen |= frontier
            missing &= ~seen
            depth += 1
        if depth > best:
            best = depth
    return best


def weak_diameter(graph: nx.Graph, vertices: Iterable[Vertex]) -> int:
    """Return the weak diameter of ``vertices``: max distance in ``graph``.

    Raises ``ValueError`` when two vertices of the set lie in different
    connected components of ``graph`` (their distance is infinite) — and
    likewise for a vertex missing from the graph entirely, so
    :func:`is_d_bounded` keeps reporting ``False`` on stale vertex sets.
    """
    vertex_list = list(vertices)
    if len(vertex_list) <= 1:
        return 0
    kernel = kernel_for(graph)
    index_of = kernel.index_of
    mask = 0
    for v in vertex_list:
        i = index_of.get(v)
        if i is None:
            raise ValueError(f"vertex {v!r} is not in the graph")
        mask |= 1 << i
    return weak_diameter_mask(kernel, mask)


def is_d_bounded(graph: nx.Graph, vertices: Iterable[Vertex], bound: int) -> bool:
    """Return whether the weak diameter of ``vertices`` is at most ``bound``."""
    try:
        return weak_diameter(graph, vertices) <= bound
    except ValueError:
        return False


def r_components(graph: nx.Graph, vertices: Iterable[Vertex], r: int) -> list[set[Vertex]]:
    """Split ``vertices`` into its r-components (Section 3 of the paper).

    Two vertices of the set are in the same r-component when they are
    linked by a chain of set vertices with consecutive distances (in the
    full graph ``G``) at most ``r``.
    """
    remaining = set(vertices)
    components: list[set[Vertex]] = []
    while remaining:
        seed = next(iter(remaining))
        component = {seed}
        frontier = deque([seed])
        remaining.discard(seed)
        while frontier:
            vertex = frontier.popleft()
            nearby = ball(graph, vertex, r) & remaining
            for other in nearby:
                component.add(other)
                remaining.discard(other)
                frontier.append(other)
        components.append(component)
    return components


def graph_power_components(graph: nx.Graph, vertices: set[Vertex], r: int) -> list[set[Vertex]]:
    """Alias of :func:`r_components` matching the G^r phrasing of the paper."""
    return r_components(graph, vertices, r)


def connected_components_of_subset(graph: nx.Graph, vertices: Iterable[Vertex]) -> list[set[Vertex]]:
    """Connected components of the induced subgraph ``G[vertices]``."""
    sub = graph.subgraph(set(vertices))
    return [set(c) for c in nx.connected_components(sub)]


def eccentricity_within(graph: nx.Graph, vertices: set[Vertex], v: Vertex) -> int:
    """Max distance in ``graph`` from ``v`` to any vertex of ``vertices``."""
    dist = distances_from(graph, v)
    worst = 0
    for u in vertices:
        if u not in dist:
            raise ValueError(f"vertex {u!r} unreachable from {v!r}")
        worst = max(worst, dist[u])
    return worst


def relabel_to_integers(graph: nx.Graph) -> tuple[nx.Graph, dict[Vertex, int]]:
    """Relabel vertices to ``0..n-1`` (sorted by repr for determinism).

    Returns the relabelled graph and the old-to-new mapping.
    """
    ordering = sorted(graph.nodes, key=repr)
    mapping = {old: i for i, old in enumerate(ordering)}
    return nx.relabel_nodes(graph, mapping, copy=True), mapping
