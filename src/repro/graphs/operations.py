"""Graph surgery used to build stress instances and counterexamples.

Minor-freeness behaves predictably under these operations, so they are
the safe toolbox for growing test instances:

* :func:`subdivide` — replacing edges by paths never creates a new
  ``K_{2,t}`` minor (subdivision preserves topological structure);
* :func:`attach_pendants` — degree-1 additions are minor-inert;
* :func:`bridge_join` — joining two graphs by a single edge keeps both
  sides' largest ``K_{2,t}`` minors (a bridge sits in no cycle);
* :func:`graph_power` — ``G^k`` (used by the r-component definition);
* :func:`disjoint_union_relabel` — integer-relabelled disjoint union.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.graphs.util import ball

Vertex = Hashable


def _next_label(graph: nx.Graph) -> int:
    return max((v for v in graph.nodes if isinstance(v, int)), default=-1) + 1


def subdivide(graph: nx.Graph, times: int = 1) -> nx.Graph:
    """Subdivide every edge ``times`` times (0 returns a copy)."""
    if times < 0:
        raise ValueError("times must be non-negative")
    result = graph.copy()
    for _ in range(times):
        fresh = nx.Graph()
        fresh.add_nodes_from(result.nodes)
        label = _next_label(result)
        for u, v in sorted(result.edges, key=repr):
            fresh.add_edge(u, label)
            fresh.add_edge(label, v)
            label += 1
        result = fresh
    return result


def attach_pendants(graph: nx.Graph, count_per_vertex: int = 1) -> nx.Graph:
    """Attach ``count_per_vertex`` fresh leaves to every vertex."""
    if count_per_vertex < 0:
        raise ValueError("count must be non-negative")
    result = graph.copy()
    label = _next_label(result)
    for v in sorted(graph.nodes, key=repr):
        for _ in range(count_per_vertex):
            result.add_edge(v, label)
            label += 1
    return result


def bridge_join(left: nx.Graph, right: nx.Graph) -> nx.Graph:
    """Disjoint union of two graphs plus one bridge between their minima."""
    joined, offset = disjoint_union_relabel(left, right)
    left_anchor = min(v for v in joined.nodes if v < offset)
    right_anchor = min(v for v in joined.nodes if v >= offset)
    joined.add_edge(left_anchor, right_anchor)
    return joined


def disjoint_union_relabel(left: nx.Graph, right: nx.Graph) -> tuple[nx.Graph, int]:
    """Union with the right side's labels shifted; returns (graph, offset)."""
    left_sorted = sorted(left.nodes, key=repr)
    right_sorted = sorted(right.nodes, key=repr)
    left_map = {v: i for i, v in enumerate(left_sorted)}
    offset = len(left_sorted)
    right_map = {v: offset + i for i, v in enumerate(right_sorted)}
    joined = nx.Graph()
    joined.add_nodes_from(left_map.values())
    joined.add_nodes_from(right_map.values())
    joined.add_edges_from((left_map[u], left_map[v]) for u, v in left.edges)
    joined.add_edges_from((right_map[u], right_map[v]) for u, v in right.edges)
    return joined, offset


def graph_power(graph: nx.Graph, k: int) -> nx.Graph:
    """``G^k``: edges between all pairs at distance 1..k (Section 3)."""
    if k < 1:
        raise ValueError("power must be >= 1")
    result = nx.Graph()
    result.add_nodes_from(graph.nodes)
    for v in graph.nodes:
        for u in ball(graph, v, k):
            if u != v:
                result.add_edge(v, u)
    return result
