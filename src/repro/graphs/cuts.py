"""Global cut machinery: cut vertices, minimal 2-cuts, crossing cuts.

Definitions (Section 2 of the paper):

* a *k-cut* of ``G`` is a minimal set of ``k`` vertices whose removal
  increases the number of connected components of ``G``;
* a cut ``C`` is *minimal* when no proper subset of ``C`` is also a cut;
* two 2-cuts ``c1``, ``c2`` *cross* when the two vertices of ``c1`` lie in
  different components of ``G − c2`` and vice versa (Section 5.3).

These operate on the whole graph; their local (radius-bounded) analogues
live in :mod:`repro.graphs.local_cuts`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterable

import networkx as nx

Vertex = Hashable


def _component_count(graph: nx.Graph) -> int:
    return nx.number_connected_components(graph)


def is_cut(graph: nx.Graph, cut: Iterable[Vertex]) -> bool:
    """Return whether removing ``cut`` increases the component count.

    A cut that empties the graph does not count (there is nothing left to
    disconnect), matching the standard convention.
    """
    cut_set = set(cut)
    if not cut_set or not set(graph.nodes) - cut_set:
        return False
    before = _component_count(graph)
    after = _component_count(graph.subgraph(set(graph.nodes) - cut_set))
    return after > before


def is_minimal_cut(graph: nx.Graph, cut: Iterable[Vertex]) -> bool:
    """Return whether ``cut`` is a cut and no proper subset of it is one."""
    cut_set = set(cut)
    if not is_cut(graph, cut_set):
        return False
    for size in range(1, len(cut_set)):
        for subset in combinations(sorted(cut_set, key=repr), size):
            if is_cut(graph, subset):
                return False
    return True


def cut_vertices(graph: nx.Graph) -> set[Vertex]:
    """Return all cut vertices (1-cuts) of ``graph``.

    Uses the linear-time articulation-point algorithm; 1-cuts are always
    minimal so no extra filtering is needed.
    """
    return set(nx.articulation_points(graph))


def cut_vertices_by_definition(graph: nx.Graph) -> set[Vertex]:
    """Quadratic definition-based 1-cut enumeration (used to cross-check)."""
    return {v for v in graph.nodes if is_cut(graph, {v})}


def two_cuts(graph: nx.Graph) -> list[frozenset[Vertex]]:
    """Enumerate all (not necessarily minimal) 2-cuts of ``graph``."""
    nodes = sorted(graph.nodes, key=repr)
    result = []
    base = _component_count(graph)
    for u, v in combinations(nodes, 2):
        rest = set(graph.nodes) - {u, v}
        if rest and _component_count(graph.subgraph(rest)) > base:
            result.append(frozenset({u, v}))
    return result


def minimal_two_cuts(graph: nx.Graph) -> list[frozenset[Vertex]]:
    """Enumerate all *minimal* 2-cuts ``{u, v}`` of ``graph``.

    ``{u, v}`` is minimal when it is a cut but neither ``{u}`` nor ``{v}``
    alone is one.
    """
    ones = cut_vertices(graph)
    return [cut for cut in two_cuts(graph) if not (cut & ones)]


def components_after_removal(graph: nx.Graph, cut: Iterable[Vertex]) -> list[set[Vertex]]:
    """Connected components of ``G − cut``."""
    rest = set(graph.nodes) - set(cut)
    return [set(c) for c in nx.connected_components(graph.subgraph(rest))]


def crossing_two_cuts(graph: nx.Graph, c1: Iterable[Vertex], c2: Iterable[Vertex]) -> bool:
    """Return whether 2-cuts ``c1`` and ``c2`` cross (Section 5.3).

    The cuts cross when the two vertices of ``c1`` lie in different
    components of ``G − c2`` *and* the two vertices of ``c2`` lie in
    different components of ``G − c1``.
    """
    c1_set, c2_set = set(c1), set(c2)
    if len(c1_set) != 2 or len(c2_set) != 2 or c1_set & c2_set:
        return False

    def separated(cut: set[Vertex], pair: set[Vertex]) -> bool:
        comps = components_after_removal(graph, cut)
        homes = []
        for v in pair:
            home = next((i for i, comp in enumerate(comps) if v in comp), None)
            if home is None:  # v is inside the cut: not separated
                return False
            homes.append(home)
        return homes[0] != homes[1]

    return separated(c2_set, c1_set) and separated(c1_set, c2_set)


def attached_components(graph: nx.Graph, cut: Iterable[Vertex]) -> list[set[Vertex]]:
    """Components of ``G − cut`` that have at least one neighbor in ``cut``.

    For a minimal cut every component of ``G − cut`` is attached, but for
    non-minimal candidate sets this filters out irrelevant components.
    """
    cut_set = set(cut)
    boundary = set()
    for v in cut_set:
        boundary.update(graph.neighbors(v))
    return [comp for comp in components_after_removal(graph, cut_set) if comp & boundary]
