"""Global cut machinery: cut vertices, minimal 2-cuts, crossing cuts.

Definitions (Section 2 of the paper):

* a *k-cut* of ``G`` is a minimal set of ``k`` vertices whose removal
  increases the number of connected components of ``G``;
* a cut ``C`` is *minimal* when no proper subset of ``C`` is also a cut;
* two 2-cuts ``c1``, ``c2`` *cross* when the two vertices of ``c1`` lie in
  different components of ``G − c2`` and vice versa (Section 5.3).

These operate on the whole graph; their local (radius-bounded) analogues
live in :mod:`repro.graphs.local_cuts`.

Everything here runs on the graph's :class:`~repro.graphs.kernel.GraphKernel`:
vertex sets are int bitsets and "components of ``G − C``" is a masked
flood-fill fixpoint, never an ``nx.Graph.subgraph`` plus a networkx
traversal.  :func:`minimal_two_cuts` is additionally memoized per kernel
(the Section 5.3 consumers — interesting cuts, friends, strip detection —
all re-enumerate it), with the cache registered as a kernel derived
cache so :func:`~repro.graphs.kernel.invalidate_kernel` clears it.
"""

from __future__ import annotations

import weakref
from itertools import combinations
from typing import Hashable, Iterable

import networkx as nx

from repro.graphs.kernel import (
    GraphKernel,
    iter_bits,
    kernel_for,
    register_derived_cache,
)

Vertex = Hashable

# minimal_two_cuts memo: graph -> {"kernel": GraphKernel, "cuts": [...]}.
# Entries are dropped when the graph's kernel object changes (node-count
# rebuild or explicit invalidate_kernel, which also clears this directly).
_TWO_CUT_CACHE: "weakref.WeakKeyDictionary[nx.Graph, dict]" = weakref.WeakKeyDictionary()
register_derived_cache(_TWO_CUT_CACHE)


def _cut_mask(kernel: GraphKernel, cut: Iterable[Vertex]) -> int:
    """Bitset of the cut's vertices; labels absent from the graph are
    ignored (removing a vertex that is not there removes nothing)."""
    index_of = kernel.index_of
    mask = 0
    for v in cut:
        i = index_of.get(v)
        if i is not None:
            mask |= 1 << i
    return mask


def is_cut(graph: nx.Graph, cut: Iterable[Vertex]) -> bool:
    """Return whether removing ``cut`` increases the component count.

    A cut that empties the graph does not count (there is nothing left to
    disconnect), matching the standard convention.
    """
    cut_set = set(cut)
    if not cut_set:
        return False
    kernel = kernel_for(graph)
    rest = kernel.full_mask & ~_cut_mask(kernel, cut_set)
    if not rest:
        return False
    before = kernel.count_components_of_mask(kernel.full_mask)
    return kernel.count_components_of_mask(rest) > before


def is_minimal_cut(graph: nx.Graph, cut: Iterable[Vertex]) -> bool:
    """Return whether ``cut`` is a cut and no proper subset of it is one."""
    cut_set = set(cut)
    if not is_cut(graph, cut_set):
        return False
    kernel = kernel_for(graph)
    mask = _cut_mask(kernel, cut_set)
    if mask.bit_count() < len(cut_set):
        # Labels outside the graph pad the set: the present vertices
        # alone form a proper subset that is equally a cut.
        return False
    full = kernel.full_mask
    before = kernel.count_components_of_mask(full)
    indices = list(iter_bits(mask))
    for size in range(1, len(indices)):
        for subset in combinations(indices, size):
            sub_mask = 0
            for i in subset:
                sub_mask |= 1 << i
            rest = full & ~sub_mask
            if rest and kernel.count_components_of_mask(rest) > before:
                return False
    return True


def cut_vertices(graph: nx.Graph) -> set[Vertex]:
    """Return all cut vertices (1-cuts) of ``graph``.

    Uses the linear-time articulation-point algorithm; 1-cuts are always
    minimal so no extra filtering is needed.
    """
    return set(nx.articulation_points(graph))


def cut_vertices_by_definition(graph: nx.Graph) -> set[Vertex]:
    """Quadratic definition-based 1-cut enumeration (used to cross-check)."""
    kernel = kernel_for(graph)
    full = kernel.full_mask
    before = kernel.count_components_of_mask(full)
    result: set[Vertex] = set()
    for i, label in enumerate(kernel.labels):
        rest = full & ~(1 << i)
        if rest and kernel.count_components_of_mask(rest) > before:
            result.add(label)
    return result


def two_cuts(graph: nx.Graph) -> list[frozenset[Vertex]]:
    """Enumerate all (not necessarily minimal) 2-cuts of ``graph``.

    Pairs scan in kernel-index order (= sorted repr order), matching the
    historical sorted-pair enumeration order.
    """
    kernel = kernel_for(graph)
    labels = kernel.labels
    full = kernel.full_mask
    base = kernel.count_components_of_mask(full)
    result = []
    for u, v in combinations(range(kernel.n), 2):
        rest = full & ~((1 << u) | (1 << v))
        if rest and kernel.count_components_of_mask(rest) > base:
            result.append(frozenset({labels[u], labels[v]}))
    return result


def minimal_two_cuts(graph: nx.Graph) -> list[frozenset[Vertex]]:
    """Enumerate all *minimal* 2-cuts ``{u, v}`` of ``graph``.

    ``{u, v}`` is minimal when it is a cut but neither ``{u}`` nor ``{v}``
    alone is one.  The enumeration is memoized per kernel: the Section
    5.3 machinery (interesting cuts, friends, almost-interesting
    vertices, strips) calls this repeatedly on the same graph.
    """
    kernel = kernel_for(graph)
    entry = None
    try:
        entry = _TWO_CUT_CACHE.get(graph)
    except TypeError:  # graph type that cannot be weak-referenced
        pass
    if entry is not None and entry["kernel"] is kernel:
        return list(entry["cuts"])
    cuts = _minimal_two_cuts_uncached(kernel)
    try:
        _TWO_CUT_CACHE[graph] = {"kernel": kernel, "cuts": cuts}
    except TypeError:
        pass
    return list(cuts)


def _minimal_two_cuts_uncached(kernel: GraphKernel) -> list[frozenset[Vertex]]:
    labels = kernel.labels
    full = kernel.full_mask
    base = kernel.count_components_of_mask(full)
    ones = 0
    for i in range(kernel.n):
        rest = full & ~(1 << i)
        if rest and kernel.count_components_of_mask(rest) > base:
            ones |= 1 << i
    result = []
    for u in range(kernel.n):
        if ones >> u & 1:
            continue
        # A minimal 2-cut's vertices share a component: a cross-component
        # pair only increases the count when one member already cuts alone.
        component = kernel.component_bits(1 << u, full)
        for v in iter_bits(component >> (u + 1)):
            v += u + 1
            if ones >> v & 1:
                continue
            rest = full & ~((1 << u) | (1 << v))
            if rest and kernel.count_components_of_mask(rest) > base:
                result.append(frozenset({labels[u], labels[v]}))
    return result


def removal_component_masks(graph: nx.Graph, cut: Iterable[Vertex]) -> list[int]:
    """Component bitsets of ``G − cut``, lowest kernel index first.

    The mask-level twin of :func:`components_after_removal`, shared with
    :mod:`repro.core.interesting` so one enumeration can serve both
    orientations of a cut.
    """
    kernel = kernel_for(graph)
    return list(kernel.components_of_mask(kernel.full_mask & ~_cut_mask(kernel, cut)))


def _sorted_label_components(
    graph: nx.Graph, kernel: GraphKernel, masks: Iterable[int]
) -> list[set[Vertex]]:
    """Decode component masks to label sets in the historical order —
    the one ``nx.connected_components`` produced: by each component's
    earliest vertex in graph insertion order."""
    components = [kernel.labels_of(mask) for mask in masks]
    if len(components) > 1:
        position = {v: i for i, v in enumerate(graph.nodes)}
        components.sort(key=lambda comp: min(position[w] for w in comp))
    return components


def components_after_removal(graph: nx.Graph, cut: Iterable[Vertex]) -> list[set[Vertex]]:
    """Connected components of ``G − cut``, in the historical order."""
    return _sorted_label_components(
        graph, kernel_for(graph), removal_component_masks(graph, cut)
    )


def crossing_two_cuts(graph: nx.Graph, c1: Iterable[Vertex], c2: Iterable[Vertex]) -> bool:
    """Return whether 2-cuts ``c1`` and ``c2`` cross (Section 5.3).

    The cuts cross when the two vertices of ``c1`` lie in different
    components of ``G − c2`` *and* the two vertices of ``c2`` lie in
    different components of ``G − c1``.
    """
    c1_set, c2_set = set(c1), set(c2)
    if len(c1_set) != 2 or len(c2_set) != 2 or c1_set & c2_set:
        return False
    kernel = kernel_for(graph)
    mask1 = _cut_mask(kernel, c1_set)
    mask2 = _cut_mask(kernel, c2_set)

    def separated(cut_mask: int, pair_mask: int) -> bool:
        low = pair_mask & -pair_mask
        high = pair_mask & ~low
        low_home = high_home = None
        for k, comp in enumerate(
            kernel.components_of_mask(kernel.full_mask & ~cut_mask)
        ):
            if comp & low:
                low_home = k
            if comp & high:
                high_home = k
        if low_home is None or high_home is None:  # inside the cut
            return False
        return low_home != high_home

    return separated(mask2, mask1) and separated(mask1, mask2)


def attached_components(graph: nx.Graph, cut: Iterable[Vertex]) -> list[set[Vertex]]:
    """Components of ``G − cut`` that have at least one neighbor in ``cut``.

    For a minimal cut every component of ``G − cut`` is attached, but for
    non-minimal candidate sets this filters out irrelevant components.
    """
    cut_set = set(cut)
    kernel = kernel_for(graph)
    closed = kernel.closed_bits
    index_of = kernel.index_of
    boundary = 0
    for v in cut_set:
        boundary |= closed[index_of[v]]
    masks = [
        mask for mask in removal_component_masks(graph, cut_set) if mask & boundary
    ]
    return _sorted_label_components(graph, kernel, masks)
