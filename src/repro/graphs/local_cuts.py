"""Local cuts (Definition 2.1) and interesting vertices (Sections 3–4).

A set ``C`` is an *r-local k-cut* of ``G`` when

* the vertices of ``C`` are pairwise at distance at most ``r`` in ``G``, and
* ``C`` is a k-cut of ``H = G[∪_{v∈C} N^r[v]]``.

All cuts considered by the paper's algorithms are *minimal* (no proper
subset of the cut is also a cut of ``H``); for a 2-cut ``{u, v}`` this
means neither ``u`` nor ``v`` alone disconnects ``H``.

A vertex ``v`` is *r-interesting* (``r ≥ 2``) when there is an r-local
2-cut ``c = {u, v}`` with

* ``N[v] ⊄ N[u]``, and
* at least two connected components of ``G[N^r[c]] − c`` each contain a
  vertex non-adjacent to ``u``.

These predicates are all decidable from radius-``r + 1`` views, which is
what makes the paper's Algorithm 1 a LOCAL algorithm.

Implementation
--------------

Arenas are **int bitsets** on the graph's
:class:`~repro.graphs.kernel.GraphKernel`: ``H`` is ``ball_u | ball_v``,
a cut test is a masked flood fill on the arena mask, and no
``nx.Graph.subgraph`` object is ever materialized.  Each vertex's
radius-``r`` ball mask is computed **once per (kernel, r)** and reused
across every pair the vertex participates in (the ball-mask arena
cache), so enumerating all r-local 2-cuts costs one ball BFS per vertex
plus one or two flood fills per candidate pair — instead of the
historical O(n·|ball|) fresh-subgraph + networkx-connectivity calls.
The cache is registered as a kernel derived cache:
``invalidate_kernel(graph)`` clears it, and a kernel rebuild (node-count
change) orphans it automatically.
"""

from __future__ import annotations

import weakref
from typing import Hashable

import networkx as nx

from repro.graphs.kernel import (
    GraphKernel,
    iter_bits,
    kernel_for,
    register_derived_cache,
)
from repro.graphs.util import ball_of_set

Vertex = Hashable

# Ball-mask arena cache: graph -> {"kernel": GraphKernel, radius: [mask|None]*n}.
# Masks fill lazily per vertex; the whole entry is dropped when the
# graph's kernel object changes or invalidate_kernel is called.
_BALL_CACHE: "weakref.WeakKeyDictionary[nx.Graph, dict]" = weakref.WeakKeyDictionary()
register_derived_cache(_BALL_CACHE)


def _ball_masks(graph: nx.Graph, kernel: GraphKernel, radius: int) -> list:
    """The (lazily filled) per-vertex radius-``radius`` ball-mask table."""
    try:
        entry = _BALL_CACHE.get(graph)
    except TypeError:  # graph type that cannot be weak-referenced
        return [None] * kernel.n
    if entry is None or entry["kernel"] is not kernel:
        entry = {"kernel": kernel}
        try:
            _BALL_CACHE[graph] = entry
        except TypeError:
            return [None] * kernel.n
    table = entry.get(radius)
    if table is None:
        table = entry[radius] = [None] * kernel.n
    return table


def _ball_mask(kernel: GraphKernel, table: list, i: int, radius: int) -> int:
    mask = table[i]
    if mask is None:
        mask = table[i] = kernel.ball_bits(kernel.labels[i], radius)
    return mask


def _splits_arena(kernel: GraphKernel, arena: int, cut_mask: int) -> bool:
    """Whether removing ``cut_mask`` disconnects the arena.

    Arenas are balls or unions of overlapping balls, hence connected, so
    "is a cut of ``H``" reduces to: the rest is non-empty and not one
    component (a single flood fill).
    """
    rest = arena & ~cut_mask
    if not rest:
        return False
    return not kernel.is_mask_connected(rest)


def local_cut_subgraph(graph: nx.Graph, cut: set[Vertex], r: int) -> nx.Graph:
    """Return ``H = G[∪_{v∈C} N^r[v]]``, the arena of the local-cut test."""
    return graph.subgraph(ball_of_set(graph, cut, r))


def is_local_one_cut(graph: nx.Graph, v: Vertex, r: int) -> bool:
    """Return whether ``{v}`` is an r-local (minimal) 1-cut of ``graph``."""
    kernel = kernel_for(graph)
    table = _ball_masks(graph, kernel, r)
    i = kernel.index_of[v]
    return _splits_arena(kernel, _ball_mask(kernel, table, i, r), 1 << i)


def local_one_cuts(graph: nx.Graph, r: int) -> set[Vertex]:
    """Return all vertices that form r-local minimal 1-cuts of ``graph``."""
    kernel = kernel_for(graph)
    table = _ball_masks(graph, kernel, r)
    return {
        label
        for i, label in enumerate(kernel.labels)
        if _splits_arena(kernel, _ball_mask(kernel, table, i, r), 1 << i)
    }


def _is_local_two_cut_idx(
    kernel: GraphKernel, table: list, u: int, v: int, r: int, minimal: bool
) -> bool:
    """Index-level two-cut test; assumes ``u != v`` and ``v`` in ``ball(u)``."""
    arena = _ball_mask(kernel, table, u, r) | _ball_mask(kernel, table, v, r)
    u_bit, v_bit = 1 << u, 1 << v
    if not _splits_arena(kernel, arena, u_bit | v_bit):
        return False
    if not minimal:
        return True
    return not _splits_arena(kernel, arena, u_bit) and not _splits_arena(
        kernel, arena, v_bit
    )


def is_local_two_cut(graph: nx.Graph, u: Vertex, v: Vertex, r: int, *, minimal: bool = True) -> bool:
    """Return whether ``{u, v}`` is an r-local 2-cut of ``graph``.

    With ``minimal=True`` (the algorithm's setting) the pair must be a
    minimal cut of the local arena: neither endpoint alone may disconnect
    it.
    """
    if u == v:
        return False
    kernel = kernel_for(graph)
    table = _ball_masks(graph, kernel, r)
    i, j = kernel.index_of[u], kernel.index_of[v]
    if not _ball_mask(kernel, table, i, r) >> j & 1:
        return False
    return _is_local_two_cut_idx(kernel, table, i, j, r, minimal)


def local_two_cuts(graph: nx.Graph, r: int, *, minimal: bool = True) -> list[frozenset[Vertex]]:
    """Enumerate all r-local (minimal) 2-cuts of ``graph``.

    One kernel-index-ordered scan: candidate partners of ``u`` are read
    straight off ``u``'s ball mask and only pairs with ``u_idx < v_idx``
    are tested, so every pair is visited exactly once — no ``seen`` set,
    no per-vertex re-sorting.  Kernel index order is sorted-repr order,
    so the output order matches the historical enumeration.
    """
    kernel = kernel_for(graph)
    table = _ball_masks(graph, kernel, r)
    labels = kernel.labels
    result: list[frozenset[Vertex]] = []
    for u in range(kernel.n):
        ball_u = _ball_mask(kernel, table, u, r)
        for dv in iter_bits(ball_u >> (u + 1)):
            v = u + 1 + dv
            if _is_local_two_cut_idx(kernel, table, u, v, r, minimal):
                result.append(frozenset({labels[u], labels[v]}))
    return result


def is_locally_k_connected(graph: nx.Graph, r: int, k: int) -> bool:
    """Return whether ``graph`` has no r-local k-cuts (Definition 2.1)."""
    if k == 1:
        return not any(is_local_one_cut(graph, v, r) for v in graph.nodes)
    if k == 2:
        return not local_two_cuts(graph, r, minimal=False)
    raise ValueError("local connectivity implemented for k in {1, 2} only")


def _certifies_interesting_idx(
    kernel: GraphKernel, table: list, u: int, v: int, r: int
) -> bool:
    """Index-level interesting-ness check for the ordered pair ``(u, v)``."""
    closed = kernel.closed_bits
    n_u = closed[u]
    if not closed[v] & ~n_u:  # first condition: N[v] ⊄ N[u]
        return False
    arena = _ball_mask(kernel, table, u, r) | _ball_mask(kernel, table, v, r)
    rest = arena & ~((1 << u) | (1 << v))
    witnesses = 0
    for comp in kernel.components_of_mask(rest):
        if comp & ~n_u:
            witnesses += 1
            if witnesses >= 2:
                return True
    return False


def _certifies_interesting(graph: nx.Graph, u: Vertex, v: Vertex, r: int) -> bool:
    """Check the two interesting-ness conditions for the ordered pair.

    ``v`` is the candidate interesting vertex; ``u`` is its cut partner.
    """
    kernel = kernel_for(graph)
    table = _ball_masks(graph, kernel, r)
    return _certifies_interesting_idx(
        kernel, table, kernel.index_of[u], kernel.index_of[v], r
    )


def is_interesting_vertex(graph: nx.Graph, v: Vertex, r: int) -> bool:
    """Return whether ``v`` is r-interesting (Section 4 definition).

    Scans all partners ``u ∈ N^r[v]`` for a certifying minimal r-local
    2-cut ``{u, v}``.
    """
    kernel = kernel_for(graph)
    table = _ball_masks(graph, kernel, r)
    j = kernel.index_of[v]
    for i in iter_bits(_ball_mask(kernel, table, j, r) & ~(1 << j)):
        if not _is_local_two_cut_idx(kernel, table, i, j, r, True):
            continue
        if _certifies_interesting_idx(kernel, table, i, j, r):
            return True
    return False


def interesting_vertices(graph: nx.Graph, r: int) -> set[Vertex]:
    """Return all r-interesting vertices of ``graph``."""
    return {v for v in graph.nodes if is_interesting_vertex(graph, v, r)}


def interesting_vertices_of_cuts(
    graph: nx.Graph, cuts: list[frozenset[Vertex]], r: int
) -> set[Vertex]:
    """Restrict interesting-vertex detection to a precomputed cut list.

    Faster than :func:`interesting_vertices` when the local 2-cuts are
    already known (the algorithm computes them anyway).
    """
    kernel = kernel_for(graph)
    table = _ball_masks(graph, kernel, r)
    index_of = kernel.index_of
    result_bits = 0
    for cut in cuts:
        a, b = sorted(index_of[w] for w in cut)
        if not result_bits >> b & 1 and _certifies_interesting_idx(
            kernel, table, a, b, r
        ):
            result_bits |= 1 << b
        if not result_bits >> a & 1 and _certifies_interesting_idx(
            kernel, table, b, a, r
        ):
            result_bits |= 1 << a
    return kernel.labels_of(result_bits)
