"""Local cuts (Definition 2.1) and interesting vertices (Sections 3–4).

A set ``C`` is an *r-local k-cut* of ``G`` when

* the vertices of ``C`` are pairwise at distance at most ``r`` in ``G``, and
* ``C`` is a k-cut of ``H = G[∪_{v∈C} N^r[v]]``.

All cuts considered by the paper's algorithms are *minimal* (no proper
subset of the cut is also a cut of ``H``); for a 2-cut ``{u, v}`` this
means neither ``u`` nor ``v`` alone disconnects ``H``.

A vertex ``v`` is *r-interesting* (``r ≥ 2``) when there is an r-local
2-cut ``c = {u, v}`` with

* ``N[v] ⊄ N[u]``, and
* at least two connected components of ``G[N^r[c]] − c`` each contain a
  vertex non-adjacent to ``u``.

These predicates are all decidable from radius-``r + 1`` views, which is
what makes the paper's Algorithm 1 a LOCAL algorithm.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.graphs.cuts import is_cut, is_minimal_cut
from repro.graphs.util import ball, ball_of_set, closed_neighborhood

Vertex = Hashable


def local_cut_subgraph(graph: nx.Graph, cut: set[Vertex], r: int) -> nx.Graph:
    """Return ``H = G[∪_{v∈C} N^r[v]]``, the arena of the local-cut test."""
    return graph.subgraph(ball_of_set(graph, cut, r))


def is_local_one_cut(graph: nx.Graph, v: Vertex, r: int) -> bool:
    """Return whether ``{v}`` is an r-local (minimal) 1-cut of ``graph``."""
    arena = local_cut_subgraph(graph, {v}, r)
    return is_cut(arena, {v})


def local_one_cuts(graph: nx.Graph, r: int) -> set[Vertex]:
    """Return all vertices that form r-local minimal 1-cuts of ``graph``."""
    return {v for v in graph.nodes if is_local_one_cut(graph, v, r)}


def is_local_two_cut(graph: nx.Graph, u: Vertex, v: Vertex, r: int, *, minimal: bool = True) -> bool:
    """Return whether ``{u, v}`` is an r-local 2-cut of ``graph``.

    With ``minimal=True`` (the algorithm's setting) the pair must be a
    minimal cut of the local arena: neither endpoint alone may disconnect
    it.
    """
    if u == v:
        return False
    if v not in ball(graph, u, r):
        return False
    cut = {u, v}
    arena = local_cut_subgraph(graph, cut, r)
    if minimal:
        return is_minimal_cut(arena, cut)
    return is_cut(arena, cut)


def local_two_cuts(graph: nx.Graph, r: int, *, minimal: bool = True) -> list[frozenset[Vertex]]:
    """Enumerate all r-local (minimal) 2-cuts of ``graph``.

    Pairs are drawn from ``{(u, v) : v ∈ N^r[u]}``; each is tested in its
    own arena.  Runtime is O(n · |ball|) cut tests, adequate for the
    simulator scales used in experiments.
    """
    seen: set[frozenset[Vertex]] = set()
    result: list[frozenset[Vertex]] = []
    for u in sorted(graph.nodes, key=repr):
        for v in sorted(ball(graph, u, r), key=repr):
            if v == u:
                continue
            pair = frozenset({u, v})
            if pair in seen:
                continue
            seen.add(pair)
            if is_local_two_cut(graph, u, v, r, minimal=minimal):
                result.append(pair)
    return result


def is_locally_k_connected(graph: nx.Graph, r: int, k: int) -> bool:
    """Return whether ``graph`` has no r-local k-cuts (Definition 2.1)."""
    if k == 1:
        return not any(is_local_one_cut(graph, v, r) for v in graph.nodes)
    if k == 2:
        return not local_two_cuts(graph, r, minimal=False)
    raise ValueError("local connectivity implemented for k in {1, 2} only")


def _certifies_interesting(graph: nx.Graph, u: Vertex, v: Vertex, r: int) -> bool:
    """Check the two interesting-ness conditions for the ordered pair.

    ``v`` is the candidate interesting vertex; ``u`` is its cut partner.
    """
    n_u = closed_neighborhood(graph, u)
    n_v = closed_neighborhood(graph, v)
    if n_v <= n_u:  # first condition: N[v] ⊄ N[u]
        return False
    arena = local_cut_subgraph(graph, {u, v}, r)
    rest = set(arena.nodes) - {u, v}
    witnesses = 0
    for comp in nx.connected_components(arena.subgraph(rest)):
        if any(w not in n_u for w in comp):
            witnesses += 1
            if witnesses >= 2:
                return True
    return False


def is_interesting_vertex(graph: nx.Graph, v: Vertex, r: int) -> bool:
    """Return whether ``v`` is r-interesting (Section 4 definition).

    Scans all partners ``u ∈ N^r[v]`` for a certifying minimal r-local
    2-cut ``{u, v}``.
    """
    for u in sorted(ball(graph, v, r), key=repr):
        if u == v:
            continue
        if not is_local_two_cut(graph, u, v, r, minimal=True):
            continue
        if _certifies_interesting(graph, u, v, r):
            return True
    return False


def interesting_vertices(graph: nx.Graph, r: int) -> set[Vertex]:
    """Return all r-interesting vertices of ``graph``."""
    return {v for v in graph.nodes if is_interesting_vertex(graph, v, r)}


def interesting_vertices_of_cuts(
    graph: nx.Graph, cuts: list[frozenset[Vertex]], r: int
) -> set[Vertex]:
    """Restrict interesting-vertex detection to a precomputed cut list.

    Faster than :func:`interesting_vertices` when the local 2-cuts are
    already known (the algorithm computes them anyway).
    """
    result: set[Vertex] = set()
    for cut in cuts:
        u, v = sorted(cut, key=repr)
        if v not in result and _certifies_interesting(graph, u, v, r):
            result.add(v)
        if u not in result and _certifies_interesting(graph, v, u, r):
            result.add(u)
    return result
