"""Seeded random generators for ``K_{2,t}``-minor-free families.

Experiments need *distributions* over each family, not single instances.
Every generator takes an explicit ``random.Random`` (or a seed) so runs
are reproducible; none of them touches global random state.

All constructions are minor-free **by construction** (trees, cacti,
outerplanar triangulations, Ding augmentations); tests cross-check small
samples against the exact minor detector.
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence

import networkx as nx

from repro.graphs.ding import Attachment, augment, make_fan, make_strip

Vertex = Hashable


def _rng(seed_or_rng: int | random.Random) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def random_tree(n: int, seed: int | random.Random = 0) -> nx.Graph:
    """Uniform random labelled tree via a Prüfer sequence."""
    if n < 1:
        raise ValueError("need at least one vertex")
    rng = _rng(seed)
    if n == 1:
        graph = nx.Graph()
        graph.add_node(0)
        return graph
    if n == 2:
        return nx.path_graph(2)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    return nx.from_prufer_sequence(prufer)


def random_caterpillar(spine: int, max_legs: int, seed: int | random.Random = 0) -> nx.Graph:
    """Caterpillar with a random number of legs (0..max_legs) per spine vertex."""
    if spine < 1 or max_legs < 0:
        raise ValueError("spine must be positive, max_legs non-negative")
    rng = _rng(seed)
    graph = nx.path_graph(spine)
    next_label = spine
    for v in range(spine):
        for _ in range(rng.randint(0, max_legs)):
            graph.add_edge(v, next_label)
            next_label += 1
    return graph


def random_cactus(
    cycles: int, max_cycle_length: int, seed: int | random.Random = 0
) -> nx.Graph:
    """Random cactus: cycles of random length attached at random vertices.

    Cacti have no two cycles sharing an edge, hence no theta subgraph and
    no ``K_{2,3}`` minor.
    """
    if cycles < 1 or max_cycle_length < 3:
        raise ValueError("need at least one cycle of length >= 3")
    rng = _rng(seed)
    graph = nx.Graph()
    graph.add_node(0)
    next_label = 1
    for _ in range(cycles):
        anchor = rng.choice(sorted(graph.nodes))
        length = rng.randint(3, max_cycle_length)
        previous = anchor
        for _ in range(length - 1):
            graph.add_edge(previous, next_label)
            previous = next_label
            next_label += 1
        graph.add_edge(previous, anchor)
    return graph


def random_outerplanar(n: int, seed: int | random.Random = 0) -> nx.Graph:
    """Random maximal outerplanar graph: random triangulation of an n-gon.

    Maximal outerplanar graphs are exactly the triangulations of a
    polygon; they are ``{K_4, K_{2,3}}``-minor-free.  Built by recursive
    random ear splitting of the polygon.
    """
    if n < 3:
        raise ValueError("needs at least 3 vertices")
    rng = _rng(seed)
    graph = nx.cycle_graph(n)

    def triangulate(i: int, j: int) -> None:
        """Triangulate the sub-polygon i..j (the edge {i, j} is present)."""
        if j - i < 2:
            return
        pivot = rng.randint(i + 1, j - 1)
        if pivot > i + 1:
            graph.add_edge(i, pivot)
        if pivot < j - 1:
            graph.add_edge(pivot, j)
        triangulate(i, pivot)
        triangulate(pivot, j)

    triangulate(0, n - 1)
    return graph


def random_ding_augmentation(
    core_size: int,
    pieces: int,
    seed: int | random.Random = 0,
    *,
    max_fan_length: int = 6,
    max_strip_rungs: int = 6,
    strip_probability: float = 0.4,
) -> nx.Graph:
    """Random augmentation of a small random core (Proposition 5.15 shape).

    The core is a random tree plus a few random extra edges (kept sparse);
    fans glue by their center onto random core vertices, strips glue two
    of their corners onto the endpoints of random core edges.
    """
    if core_size < 2 or pieces < 0:
        raise ValueError("core_size >= 2, pieces >= 0 required")
    rng = _rng(seed)
    core = random_tree(core_size, rng)
    attachments: list[Attachment] = []
    offset = 10_000
    # Ding's rule: a core vertex may be shared only via fan centers, so
    # strip corners must land on fresh core vertices.
    strip_used: set[int] = set()
    core_edges = sorted(tuple(sorted(e)) for e in core.edges)
    for _ in range(pieces):
        free_edges = [
            (u, v) for u, v in core_edges if u not in strip_used and v not in strip_used
        ]
        if rng.random() < strip_probability and free_edges:
            strip = make_strip(
                rng.randint(2, max_strip_rungs),
                label_offset=offset,
                crossed=rng.random() < 0.3,
            )
            u, v = rng.choice(free_edges)
            strip_used.update((u, v))
            a, b, _, _ = strip.corners
            attachments.append(Attachment(piece=strip, glue={a: u, b: v}))
        else:
            fan = make_fan(rng.randint(1, max_fan_length), label_offset=offset)
            center_target = rng.choice(sorted(core.nodes))
            attachments.append(Attachment(piece=fan, glue={fan.center: center_target}))
        offset += 10_000
    return augment(core, attachments)


def random_k2t_free(
    n: int, t: int, seed: int | random.Random = 0, *, density: float = 0.5
) -> nx.Graph:
    """Random ``K_{2,t}``-minor-free graph by guarded edge insertion.

    Starts from a random spanning tree and adds random edges, rejecting
    any edge that creates a ``K_{2,t}`` minor witnessed by the
    singleton-hub detector; a final exact check is the caller's business
    (see tests).  Intended for small n (the detector is flow-per-pair).
    """
    if t < 3:
        raise ValueError("t >= 3 required (t = 2 forbids all cycles)")
    from repro.graphs.minors import largest_k2t_minor_singleton_hubs

    rng = _rng(seed)
    graph = random_tree(n, rng)
    candidates = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if not graph.has_edge(u, v)
    ]
    rng.shuffle(candidates)
    budget = int(density * len(candidates))
    for u, v in candidates[:budget]:
        graph.add_edge(u, v)
        if largest_k2t_minor_singleton_hubs(graph) >= t:
            graph.remove_edge(u, v)
    return graph


def sample_family(
    name: str, sizes: Sequence[int], t: int, seed: int = 0
) -> list[nx.Graph]:
    """Draw one instance per size from a named random family.

    Recognised names: ``tree``, ``caterpillar``, ``cactus``,
    ``outerplanar``, ``ding``, ``k2t_free``.
    """
    rng = random.Random(seed)
    graphs = []
    for size in sizes:
        if name == "tree":
            graphs.append(random_tree(size, rng))
        elif name == "caterpillar":
            graphs.append(random_caterpillar(max(1, size // 3), 2, rng))
        elif name == "cactus":
            graphs.append(random_cactus(max(1, size // 4), 6, rng))
        elif name == "outerplanar":
            graphs.append(random_outerplanar(size, rng))
        elif name == "ding":
            graphs.append(random_ding_augmentation(max(2, size // 8), max(1, size // 10), rng))
        elif name == "k2t_free":
            graphs.append(random_k2t_free(size, t, rng))
        else:
            raise ValueError(f"unknown family {name!r}")
    return graphs
