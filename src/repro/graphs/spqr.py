"""Triconnected decomposition and non-crossing 2-cut families (Sec. 5.3).

The paper uses SPQR trees only inside the *proof* of Lemma 3.3 — to
organise the interesting 2-cuts into at most three pairwise-non-crossing
families (Proposition 5.8) that can each be arranged tree-like.  The
algorithm itself never builds one.

We implement the two pieces the analysis module needs:

* :func:`triconnected_decomposition` — a recursive split of a 2-connected
  graph along minimal 2-cuts into *S* (cycle), *P* (parallel: a 2-cut
  with three or more attached pieces) and *R* (3-connected) components
  with virtual edges, as in the SPQR construction.  The split order is
  deterministic but the tree is not the canonical SPQR tree (we do not
  merge adjacent S nodes); every guarantee the analysis relies on — each
  leaf skeleton is a cycle, a dipole, or 3-connected — holds.
* :func:`noncrossing_families` — partition a set of 2-cuts into families
  of pairwise non-crossing cuts (greedy smallest-last colouring of the
  crossing graph).  Proposition 5.8 proves 3 families suffice for
  interesting cuts; tests check our partition respects that bound on the
  paper's families.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx

from repro.graphs.cuts import crossing_two_cuts, minimal_two_cuts

Vertex = Hashable


@dataclass
class SkeletonNode:
    """One node of the decomposition tree."""

    kind: str
    """``"S"`` (cycle), ``"P"`` (parallel split), ``"R"`` (3-connected),
    or ``"Q"`` (trivial two-vertex skeleton)."""
    skeleton: nx.Graph
    virtual_edges: set[frozenset[Vertex]] = field(default_factory=set)
    children: list["SkeletonNode"] = field(default_factory=list)

    def leaves(self) -> list["SkeletonNode"]:
        if not self.children:
            return [self]
        result = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def all_nodes(self) -> list["SkeletonNode"]:
        result = [self]
        for child in self.children:
            result.extend(child.all_nodes())
        return result


def _classify_leaf(graph: nx.Graph) -> str:
    n = graph.number_of_nodes()
    if n <= 2:
        return "Q"
    if all(graph.degree(v) == 2 for v in graph.nodes):
        return "S"
    return "R"


def triconnected_decomposition(graph: nx.Graph) -> SkeletonNode:
    """Recursively split a connected graph along minimal 2-cuts.

    Cycles and 3-connected graphs are leaves; otherwise the
    lexicographically smallest minimal 2-cut ``{u, v}`` splits the graph
    into its attached pieces, each augmented with the virtual edge
    ``uv``.  Raises ``ValueError`` on disconnected input; 1-cuts should
    be removed first via the block-cut tree (as the paper does).
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("empty graph")
    if not nx.is_connected(graph):
        raise ValueError("triconnected decomposition requires a connected graph")

    n = graph.number_of_nodes()
    if n <= 2:
        return SkeletonNode(kind="Q", skeleton=graph.copy())
    if all(graph.degree(v) == 2 for v in graph.nodes):
        return SkeletonNode(kind="S", skeleton=graph.copy())
    cuts = minimal_two_cuts(graph)
    if not cuts:
        return SkeletonNode(kind=_classify_leaf(graph), skeleton=graph.copy())

    cut = min(cuts, key=lambda c: tuple(sorted(map(repr, c))))
    u, v = sorted(cut, key=repr)
    rest = set(graph.nodes) - {u, v}
    pieces = [set(c) for c in nx.connected_components(graph.subgraph(rest))]
    virtual = frozenset({u, v})

    skeleton = nx.Graph()
    skeleton.add_edge(u, v)
    parent = SkeletonNode(
        kind="P" if len(pieces) + int(graph.has_edge(u, v)) >= 3 else "P",
        skeleton=skeleton,
        virtual_edges={virtual},
    )
    for piece in pieces:
        sub = graph.subgraph(piece | {u, v}).copy()
        sub.add_edge(u, v)
        child = triconnected_decomposition(sub)
        child.virtual_edges.add(virtual)
        parent.children.append(child)
    return parent


def decomposition_two_cuts(root: SkeletonNode) -> list[frozenset[Vertex]]:
    """All 2-cuts exposed by the decomposition (virtual edge endpoints)."""
    cuts: set[frozenset[Vertex]] = set()
    for node in root.all_nodes():
        cuts.update(node.virtual_edges)
    return sorted(cuts, key=lambda c: tuple(sorted(map(repr, c))))


def crossing_graph(graph: nx.Graph, cuts: list[frozenset[Vertex]]) -> nx.Graph:
    """Graph on the cuts with edges between crossing pairs (Sec. 5.3)."""
    result = nx.Graph()
    result.add_nodes_from(cuts)
    for i, c1 in enumerate(cuts):
        for c2 in cuts[i + 1 :]:
            if crossing_two_cuts(graph, c1, c2):
                result.add_edge(c1, c2)
    return result


def noncrossing_families(
    graph: nx.Graph, cuts: list[frozenset[Vertex]]
) -> list[list[frozenset[Vertex]]]:
    """Partition ``cuts`` into families of pairwise non-crossing cuts.

    Uses smallest-last greedy colouring of the crossing graph, which is
    optimal on the chordal-ish crossing structures arising here.
    Proposition 5.8 guarantees interesting cuts admit 3 families; the
    greedy bound is ``1 + max degree`` in the worst case.
    """
    conflict = crossing_graph(graph, cuts)
    coloring = nx.coloring.greedy_color(conflict, strategy="smallest_last")
    family_count = 1 + max(coloring.values(), default=-1)
    families: list[list[frozenset[Vertex]]] = [[] for _ in range(family_count)]
    for cut, color in coloring.items():
        families[color].append(cut)
    return [sorted(f, key=lambda c: tuple(sorted(map(repr, c)))) for f in families]
