"""Asymptotic-dimension covers (Section 3 of the paper).

A class ``G`` has asymptotic dimension at most ``d`` with *control
function* ``f`` when for every ``G ∈ G`` and every ``r > 0`` there is a
cover ``V(G) = B_0 ∪ … ∪ B_d`` such that every r-component of each
``B_i`` is ``f(r)``-bounded (weak diameter at most ``f(r)``).

This module provides:

* :func:`verify_cover` — check the definition directly for a concrete
  cover, returning the witnessed bound;
* :func:`path_cover` and :func:`tree_cover` — the classical dimension-1
  constructions with linear control (``f(r) = 2r`` for paths,
  ``f(r) = 6r`` for trees via annuli + floor-ancestor classes);
* :func:`bfs_layered_cover` — a generic 2-set cover by BFS annuli; its
  control quality is *measured*, not proven, and it is exactly what the
  experiment harness uses to probe covers on the ``K_{2,t}``-minor-free
  families;
* :func:`control_function_k2t` — the control function
  ``f(r) = (5r + 18)·t`` quoted by the paper ([3, Lemma 7.1]) for
  ``K_{2,t}``-minor-free graphs (asymptotic dimension 1).
"""

from __future__ import annotations

from typing import Hashable, Sequence

import networkx as nx

from repro.graphs.util import distances_from, r_components, weak_diameter

Vertex = Hashable


def control_function_k2t(r: int, t: int) -> int:
    """Control function for ``K_{2,t}``-minor-free graphs, ``f(r) = (5r+18)·t``.

    The paper (Section 4) cites [3, Lemma 7.1] for this choice; it feeds
    the radius constants ``m_3.2 = f(5)+2`` and ``m_3.3 = f(11)+5``.
    """
    if r < 0:
        raise ValueError("radius must be non-negative")
    if t < 2:
        raise ValueError("K_{2,t} exclusion needs t >= 2")
    return (5 * r + 18) * t


def verify_cover(
    graph: nx.Graph, cover: Sequence[set[Vertex]], r: int, bound: int | None = None
) -> tuple[bool, int]:
    """Check the asymptotic-dimension cover property.

    Returns ``(ok, witnessed_bound)`` where ``witnessed_bound`` is the
    largest weak diameter over all r-components of all cover sets.  When
    ``bound`` is given, ``ok`` additionally requires
    ``witnessed_bound ≤ bound``; otherwise ``ok`` only certifies that the
    sets cover ``V(G)``.
    """
    covered: set[Vertex] = set()
    for part in cover:
        covered |= set(part)
    if covered != set(graph.nodes):
        return False, -1
    worst = 0
    for part in cover:
        for component in r_components(graph, part, r):
            worst = max(worst, weak_diameter(graph, component))
    ok = worst <= bound if bound is not None else True
    return ok, worst


def path_cover(graph: nx.Graph, r: int) -> list[set[Vertex]]:
    """Dimension-1 cover for path graphs: alternating intervals of length 2r.

    Every r-component of each part is an interval of ``2r`` consecutive
    vertices, hence ``(2r − 1)``-bounded; parts alternate so same-part
    intervals sit ``2r > r`` apart.
    """
    if r <= 0:
        raise ValueError("r must be positive")
    ends = [v for v in graph.nodes if graph.degree(v) <= 1]
    if graph.number_of_nodes() == 1:
        return [set(graph.nodes), set()]
    if not nx.is_connected(graph) or len(ends) != 2 or any(
        graph.degree(v) > 2 for v in graph.nodes
    ):
        raise ValueError("path_cover requires a path graph")
    start = min(ends, key=repr)
    dist = distances_from(graph, start)
    width = 2 * r
    parts: list[set[Vertex]] = [set(), set()]
    for v, d in dist.items():
        parts[(d // width) % 2].add(v)
    return parts


def tree_cover(graph: nx.Graph, r: int, root: Vertex | None = None) -> list[set[Vertex]]:
    """Dimension-1 cover for trees with control ``f(r) = 6r``.

    Construction: root the tree; annulus ``A_k`` holds depths in
    ``[k·2r, (k+1)·2r)``; within an annulus, vertices sharing their
    ancestor at depth ``max(0, k·2r − r)`` form one class.  Classes of the
    same annulus are more than ``r`` apart, same-parity annuli are more
    than ``r`` apart, and each class has weak diameter at most ``6r``.
    ``B_0``/``B_1`` collect even/odd annuli.
    """
    if r <= 0:
        raise ValueError("r must be positive")
    if graph.number_of_nodes() == 0:
        return [set(), set()]
    if not nx.is_tree(graph):
        raise ValueError("tree_cover requires a tree")
    if root is None:
        root = min(graph.nodes, key=repr)
    depth = distances_from(graph, root)
    width = 2 * r
    parts: list[set[Vertex]] = [set(), set()]
    for v, d in depth.items():
        parts[(d // width) % 2].add(v)
    return parts


def tree_cover_classes(
    graph: nx.Graph, r: int, root: Vertex | None = None
) -> list[set[Vertex]]:
    """Return the individual annulus classes of :func:`tree_cover`.

    Useful for tests: each class must be ``6r``-bounded and classes inside
    one part must be pairwise more than ``r`` apart.
    """
    if r <= 0:
        raise ValueError("r must be positive")
    if not nx.is_tree(graph):
        raise ValueError("tree_cover_classes requires a tree")
    if root is None:
        root = min(graph.nodes, key=repr)
    depth = distances_from(graph, root)
    parent = dict(nx.bfs_predecessors(graph, root))
    width = 2 * r

    def ancestor_at(v: Vertex, target_depth: int) -> Vertex:
        while depth[v] > target_depth:
            v = parent[v]
        return v

    classes: dict[tuple[int, Vertex], set[Vertex]] = {}
    for v, d in depth.items():
        k = d // width
        floor_depth = max(0, k * width - r)
        key = (k, ancestor_at(v, floor_depth))
        classes.setdefault(key, set()).add(v)
    return [classes[key] for key in sorted(classes, key=repr)]


def bfs_layered_cover(graph: nx.Graph, r: int, root: Vertex | None = None) -> list[set[Vertex]]:
    """Generic 2-set cover by BFS annuli of width ``2r`` (measured control).

    On trees this coincides with :func:`tree_cover`; on general graphs the
    r-component bound is *not* guaranteed — callers measure it with
    :func:`verify_cover`.  The experiment harness uses this to probe how
    tight asymptotic-dimension control is on the paper's families.
    """
    if r <= 0:
        raise ValueError("r must be positive")
    if graph.number_of_nodes() == 0:
        return [set(), set()]
    if root is None:
        root = min(graph.nodes, key=repr)
    depth = distances_from(graph, root)
    if len(depth) != graph.number_of_nodes():
        raise ValueError("bfs_layered_cover requires a connected graph")
    width = 2 * r
    parts: list[set[Vertex]] = [set(), set()]
    for v, d in depth.items():
        parts[(d // width) % 2].add(v)
    return parts
