"""Generator sanity guards: invariants every produced graph must satisfy."""

from __future__ import annotations

import networkx as nx

from repro.graphs.minors import edge_density_certificate, largest_k2t_minor_singleton_hubs


def check_simple_connected(graph: nx.Graph) -> None:
    """Raise ``ValueError`` unless the graph is simple, loopless, connected."""
    if graph.number_of_nodes() == 0:
        raise ValueError("graph is empty")
    if any(u == v for u, v in graph.edges):
        raise ValueError("graph has a self-loop")
    if graph.is_multigraph():
        raise ValueError("graph is a multigraph")
    if not nx.is_connected(graph):
        raise ValueError("graph is disconnected")


def check_k2t_free_fast(graph: nx.Graph, t: int) -> None:
    """Raise if a fast certificate shows a ``K_{2,t}`` minor.

    Uses the density bound and the singleton-hub flow detector — both
    one-sided (no false alarms).  The exact check lives in the tests.
    """
    if edge_density_certificate(graph, t):
        raise ValueError(f"edge density forces a K_2,{t} minor")
    if largest_k2t_minor_singleton_hubs(graph) >= t:
        raise ValueError(f"singleton-hub detector found a K_2,{t} minor")


def assert_vertices_are_integers(graph: nx.Graph) -> None:
    """The LOCAL simulator requires hashable, orderable ids; we use ints."""
    for v in graph.nodes:
        if not isinstance(v, int):
            raise ValueError(f"vertex {v!r} is not an int")
