"""True-twin detection and removal (Section 2 of the paper).

Two distinct vertices ``u`` and ``v`` are *true twins* when
``N[u] = N[v]`` (in particular they are adjacent).  The *true-twin-less
graph* ``G⁻`` associated to ``G`` keeps exactly one representative of
every true-twin class; the paper notes that ``MDS(G⁻) = MDS(G)`` and that
``G⁻`` is computable in a constant number of LOCAL rounds (each vertex
learns its neighbors' closed neighborhoods in 2 rounds and the
lowest-identifier twin survives).

We mirror that determinism: the representative of each class is the
minimum vertex under sorted-repr order, so distributed and centralized
computations agree.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.graphs.util import closed_neighborhood

Vertex = Hashable


def true_twin_classes(graph: nx.Graph) -> list[set[Vertex]]:
    """Group the vertices of ``graph`` into true-twin equivalence classes.

    Vertices with a unique closed neighborhood form singleton classes.
    The result is deterministic: classes are sorted by their representative.
    """
    buckets: dict[frozenset[Vertex], set[Vertex]] = {}
    for v in graph.nodes:
        key = frozenset(closed_neighborhood(graph, v))
        buckets.setdefault(key, set()).add(v)
    classes = list(buckets.values())
    classes.sort(key=lambda cls: repr(min(cls, key=repr)))
    return classes


def has_true_twins(graph: nx.Graph) -> bool:
    """Return whether ``graph`` contains at least one true-twin pair."""
    return any(len(cls) > 1 for cls in true_twin_classes(graph))


def twin_representative(cls: set[Vertex]) -> Vertex:
    """Deterministic representative of a twin class (min by repr order)."""
    return min(cls, key=repr)


def remove_true_twins(graph: nx.Graph) -> tuple[nx.Graph, dict[Vertex, Vertex]]:
    """Return ``(G⁻, representative_map)``.

    ``G⁻`` is the induced subgraph of ``graph`` on one representative per
    true-twin class, iterated until no true twins remain (removing twins
    can create new ones, e.g. in a clique).  ``representative_map`` sends
    every original vertex to the vertex of ``G⁻`` that represents it.

    ``MDS(G⁻) = MDS(G)``: a dominating set of ``G⁻`` dominates ``G``
    because a removed twin has the same closed neighborhood as its
    representative.
    """
    mapping = {v: v for v in graph.nodes}
    current = graph.copy()
    while True:
        classes = true_twin_classes(current)
        removable = [cls for cls in classes if len(cls) > 1]
        if not removable:
            break
        for cls in removable:
            rep = twin_representative(cls)
            for v in cls:
                if v != rep:
                    current.remove_node(v)
                    mapping[v] = rep
    # Path-compress: map original vertices through chains of removals.
    for v in list(mapping):
        rep = mapping[v]
        while mapping[rep] != rep:
            rep = mapping[rep]
        mapping[v] = rep
    return current, mapping


def lift_dominating_set(dominating_set: set[Vertex], graph: nx.Graph) -> set[Vertex]:
    """Interpret a dominating set of ``G⁻`` as a dominating set of ``G``.

    Because every removed vertex is a true twin of its representative, the
    set itself already dominates ``G``; this helper exists for symmetry and
    validates the claim (callers may assert with
    :func:`repro.analysis.domination.is_dominating_set`).
    """
    return set(dominating_set)
