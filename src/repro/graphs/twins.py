"""True-twin detection and removal (Section 2 of the paper).

Two distinct vertices ``u`` and ``v`` are *true twins* when
``N[u] = N[v]`` (in particular they are adjacent).  The *true-twin-less
graph* ``G⁻`` associated to ``G`` keeps exactly one representative of
every true-twin class; the paper notes that ``MDS(G⁻) = MDS(G)`` and that
``G⁻`` is computable in a constant number of LOCAL rounds (each vertex
learns its neighbors' closed neighborhoods in 2 rounds and the
lowest-identifier twin survives).

We mirror that determinism: the representative of each class is the
minimum vertex under sorted-repr order, so distributed and centralized
computations agree.

Detection groups vertices by their precomputed closed-neighborhood
*bitsets* (one dict insert per vertex, keyed by a Python int) instead of
hashing a ``frozenset`` per vertex, and the iterated removal runs as a
pure bitset fixpoint on a shrinking survivor mask — the reduced graph is
materialized once at the end, not mutated per round.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.graphs.kernel import iter_bits, kernel_for

Vertex = Hashable


def true_twin_classes(graph: nx.Graph) -> list[set[Vertex]]:
    """Group the vertices of ``graph`` into true-twin equivalence classes.

    Vertices with a unique closed neighborhood form singleton classes.
    The result is deterministic: classes are sorted by their representative
    (dict insertion order already walks kernel indices ascending, and the
    kernel index of a class's first member *is* its repr-least vertex).
    """
    kernel = kernel_for(graph)
    labels = kernel.labels
    buckets: dict = {}
    for i, key in enumerate(_closed_keys(kernel)):
        buckets.setdefault(key, []).append(i)
    return [{labels[i] for i in members} for members in buckets.values()]


def _closed_keys(kernel):
    """Hashable per-vertex closed-neighborhood keys, kernel order.

    Int backend: the precomputed bitsets themselves.  Packed backend:
    the sorted closed CSR rows as bytes — no mask table is ever built.
    """
    if kernel.backend == "packed":
        cind, ccols = kernel._closed_csr()
        return (ccols[cind[i] : cind[i + 1]].tobytes() for i in range(kernel.n))
    return iter(kernel.closed_bits)


def has_true_twins(graph: nx.Graph) -> bool:
    """Return whether ``graph`` contains at least one true-twin pair."""
    kernel = kernel_for(graph)
    seen: set = set()
    for key in _closed_keys(kernel):
        if key in seen:
            return True
        seen.add(key)
    return False


def twin_representative(cls: set[Vertex]) -> Vertex:
    """Deterministic representative of a twin class (min by repr order)."""
    return min(cls, key=repr)


def remove_true_twins(graph: nx.Graph) -> tuple[nx.Graph, dict[Vertex, Vertex]]:
    """Return ``(G⁻, representative_map)``.

    ``G⁻`` is the induced subgraph of ``graph`` on one representative per
    true-twin class, iterated until no true twins remain (removing twins
    can create new ones, e.g. in a clique).  ``representative_map`` sends
    every original vertex to the vertex of ``G⁻`` that represents it.

    ``MDS(G⁻) = MDS(G)``: a dominating set of ``G⁻`` dominates ``G``
    because a removed twin has the same closed neighborhood as its
    representative.

    On a packed kernel the per-round fixpoint runs as prefix-sum
    bucketing over the closed CSR (same rounds, same representatives);
    the reduced graph is still materialized as an ``nx`` subgraph, so
    callers needing a graph-free reduction should use
    :func:`repro.graphs.packed.twin_survivor_indices` directly (as the
    D₂ pipeline does).
    """
    kernel = kernel_for(graph)
    labels = kernel.labels
    if kernel.backend == "packed":
        from repro.graphs.packed import twin_survivor_indices

        survivor_idx, representative = twin_survivor_indices(kernel)
        mapping = {
            labels[i]: labels[int(rep)] for i, rep in enumerate(representative.tolist())
        }
        reduced = graph.subgraph({labels[int(i)] for i in survivor_idx}).copy()
        return reduced, mapping
    closed = kernel.closed_bits
    mapping = {v: v for v in graph.nodes}
    survivors = kernel.full_mask
    while True:
        # One pass = group the current survivors by their closed
        # neighborhood *within the survivor-induced subgraph* and drop
        # every non-representative, all against the same snapshot
        # (matching the historical per-round class computation).
        buckets: dict[int, int] = {}
        removed = 0
        for i in iter_bits(survivors):
            key = closed[i] & survivors
            rep = buckets.get(key)
            if rep is None:
                buckets[key] = i  # ascending scan: first member is min-repr
            else:
                removed |= 1 << i
                mapping[labels[i]] = labels[rep]
        if not removed:
            break
        survivors &= ~removed
    # Path-compress: map original vertices through chains of removals.
    for v in list(mapping):
        rep = mapping[v]
        while mapping[rep] != rep:
            rep = mapping[rep]
        mapping[v] = rep
    reduced = graph.subgraph({labels[i] for i in iter_bits(survivors)}).copy()
    return reduced, mapping


def lift_dominating_set(dominating_set: set[Vertex], graph: nx.Graph) -> set[Vertex]:
    """Interpret a dominating set of ``G⁻`` as a dominating set of ``G``.

    Because every removed vertex is a true twin of its representative, the
    set itself already dominates ``G``; this helper exists for symmetry and
    validates the claim (callers may assert with
    :func:`repro.analysis.domination.is_dominating_set`).
    """
    return set(dominating_set)
