"""Graph substrate: generators, cuts, twins, minors, decompositions.

This subpackage implements every graph-theoretic primitive the paper
relies on:

* the CSR + bitset graph kernel every hot path runs on
  (:mod:`repro.graphs.kernel`),
* neighborhood/ball utilities (:mod:`repro.graphs.util`),
* true-twin reduction (:mod:`repro.graphs.twins`),
* global and *local* cut machinery, Definition 2.1 of the paper
  (:mod:`repro.graphs.cuts`, :mod:`repro.graphs.local_cuts`),
* block-cut trees and a triconnected decomposition
  (:mod:`repro.graphs.blockcut`, :mod:`repro.graphs.spqr`),
* ``K_{2,t}``-minor detection (:mod:`repro.graphs.minors`),
* asymptotic-dimension covers (:mod:`repro.graphs.asdim`),
* generators for every family used in the paper's Table 1 and proofs
  (:mod:`repro.graphs.generators`, :mod:`repro.graphs.ding`,
  :mod:`repro.graphs.random_families`, :mod:`repro.graphs.families`).
"""

from repro.graphs.kernel import (
    GraphKernel,
    KernelView,
    StaleKernelError,
    instance_from_wire,
    invalidate_kernel,
    kernel_backend,
    kernel_for,
    kernel_from_edge_file,
    kernel_from_edges,
    kernel_from_wire,
    kernel_guard_enabled,
    read_wire,
    set_kernel_backend,
    set_kernel_guard,
    write_wire,
)
from repro.graphs.packed import MaskHandle, PackedGraphKernel, PackedMask
from repro.graphs.util import (
    closed_neighborhood,
    closed_neighborhood_of_set,
    ball,
    induced_ball,
    weak_diameter,
    r_components,
    is_d_bounded,
)
from repro.graphs.twins import true_twin_classes, remove_true_twins, has_true_twins
from repro.graphs.cuts import (
    cut_vertices,
    minimal_two_cuts,
    is_cut,
    is_minimal_cut,
    crossing_two_cuts,
)
from repro.graphs.local_cuts import (
    local_one_cuts,
    local_two_cuts,
    is_local_one_cut,
    is_local_two_cut,
    is_locally_k_connected,
)
from repro.graphs.blockcut import block_cut_tree, biconnected_blocks
from repro.graphs.minors import (
    has_k2t_minor,
    largest_k2t_minor,
    is_k2t_minor_free,
    has_minor,
)
from repro.graphs.asdim import (
    verify_cover,
    path_cover,
    tree_cover,
    bfs_layered_cover,
    control_function_k2t,
)

__all__ = [
    "GraphKernel",
    "PackedGraphKernel",
    "PackedMask",
    "MaskHandle",
    "KernelView",
    "StaleKernelError",
    "kernel_for",
    "kernel_from_edges",
    "kernel_from_edge_file",
    "kernel_from_wire",
    "instance_from_wire",
    "invalidate_kernel",
    "kernel_backend",
    "set_kernel_backend",
    "write_wire",
    "read_wire",
    "kernel_guard_enabled",
    "set_kernel_guard",
    "closed_neighborhood",
    "closed_neighborhood_of_set",
    "ball",
    "induced_ball",
    "weak_diameter",
    "r_components",
    "is_d_bounded",
    "true_twin_classes",
    "remove_true_twins",
    "has_true_twins",
    "cut_vertices",
    "minimal_two_cuts",
    "is_cut",
    "is_minimal_cut",
    "crossing_two_cuts",
    "local_one_cuts",
    "local_two_cuts",
    "is_local_one_cut",
    "is_local_two_cut",
    "is_locally_k_connected",
    "block_cut_tree",
    "biconnected_blocks",
    "has_k2t_minor",
    "largest_k2t_minor",
    "is_k2t_minor_free",
    "has_minor",
    "verify_cover",
    "path_cover",
    "tree_cover",
    "bfs_layered_cover",
    "control_function_k2t",
]
