"""Compact graph kernel: CSR adjacency + closed-neighborhood bitsets.

Every hot loop in the reproduction — domination checks, greedy residual
spans, ``N^r[v]`` balls, and the simulation engine's delivery routing —
used to re-walk ``nx.Graph`` adjacency dictionaries, allocating a fresh
Python set per call.  :class:`GraphKernel` is the shared compact
representation those loops run on instead:

* vertices are relabelled to ``0..n-1`` in deterministic ``repr`` order
  (the same ordering :func:`repro.graphs.util.relabel_to_integers` and
  the port-numbered :class:`~repro.local_model.network.Network` use, so
  kernel index order *is* port order);
* adjacency is stored once in CSR form (``indptr``/``indices`` as
  ``array('q')``), each row sorted by neighbor index;
* every closed neighborhood ``N[v]`` is precomputed as a Python-int
  bitset, so ``N[S]`` is a loop of ``|S|`` bitwise ORs and a residual
  span is a single ``int.bit_count()``.

Caching contract
----------------

Kernels are built once per graph through :func:`kernel_for` and cached
in a :class:`weakref.WeakKeyDictionary`, so the kernel lives exactly as
long as the graph object.  A kernel assumes the graph is **not mutated
after** ``kernel_for`` — mutate the graph and you must rebuild.  The
cache-hit path stays O(1), so the only automatic guard is the node
count: mutations that change it rebuild transparently, while any
equal-count mutation (edge rewires, node replacement) requires
:func:`invalidate_kernel` (or simply not mutating — the contract; see
README "Performance" and "Correctness tooling").

The contract is checked twice over: statically by ``repro lint`` —
RPR001 flags mutation paths that can reach a function exit without
``invalidate_kernel``, RPR002 flags per-graph caches that never
register with :func:`register_derived_cache` — and dynamically by the
``REPRO_KERNEL_GUARD=1`` sanitizer, under which every cache hit
re-verifies a structural fingerprint and raises
:class:`StaleKernelError` (with build-site provenance) instead of
serving a stale kernel.

Masks are plain Python ints: bit ``i`` set means "vertex with kernel
index ``i`` is in the set".  ``full_mask`` has all ``n`` bits set.

Two backends, one contract
--------------------------

Memory profile of this (int) backend: the precomputed
closed-neighborhood bitsets hold one ``n``-bit int per vertex —
O(n²/8) bytes in the worst case (~12 MB at n = 10⁴, ~1.2 GB at
n = 10⁵) — so it targets the 10³–10⁴ range the experiment workloads
live in.  Beyond that, :func:`kernel_for` automatically switches to
the **packed backend** (:class:`repro.graphs.packed.PackedGraphKernel`):
CSR adjacency in numpy ``int64`` arrays, vertex sets as packed
``uint64`` word arrays (:class:`~repro.graphs.packed.PackedMask`), and
— the load-bearing invariant — **no precomputed per-node
closed-neighborhood masks**; every primitive is a vectorized CSR scan,
keeping memory O(n + m) words all the way to n ≈ 10⁶
(BENCH_bigraph.json).

Selection is by node count against a threshold (default
``8192``), overridable three ways: the ``REPRO_KERNEL_BACKEND``
environment variable (``auto``/``int``/``packed``), the
:func:`set_kernel_backend` API, or the ``backend=`` argument of
:func:`kernel_for`/:func:`kernel_from_edges`.  Both backends share the
canonical form — labels repr-sorted, CSR rows ascending, identical
:class:`KernelWire` bytes — so masks produced by one backend's
primitives feed back into that same backend's primitives unchanged,
and differential tests pin the outputs equal.  Million-node instances
should be built through :func:`kernel_from_edges` /
:func:`kernel_from_edge_file` / :func:`read_wire` (never an
``nx.Graph``) and wrapped in :class:`KernelView` for the
``solve``/``solve_many`` front door.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import traceback
import weakref
from array import array
from bisect import bisect_left
from typing import Hashable, Iterable, Iterator, NamedTuple

import networkx as nx

Vertex = Hashable

# Bounded chunk size for streaming digest/serialization of wires: big
# wires are hashed and written piecewise, never as one giant temporary.
_WIRE_CHUNK = 1 << 20


class StaleKernelError(RuntimeError):
    """A cached :class:`GraphKernel` was served for a mutated graph.

    Raised only under the ``REPRO_KERNEL_GUARD=1`` sanitizer (see
    :func:`set_kernel_guard`): the graph's structural fingerprint no
    longer matches the one recorded when its kernel was built, meaning
    some code mutated the graph without calling
    :func:`invalidate_kernel` — every kernel-backed primitive would have
    silently computed on stale topology.  The error message carries the
    build-site provenance of the offending kernel; the stale kernel and
    its derived caches are dropped before raising, so a handler may
    simply invalidate-and-retry.
    """


def wire_digest(wire: "KernelWire") -> str:
    """Canonical content hash of a :class:`KernelWire` snapshot.

    Two graphs with equal labels and equal CSR bytes hash equally, so
    the digest is a durable identity for an instance: the serve layer
    keys its resident cache on it, and the sweep layer's manifests and
    checkpoints use it to prove a shard re-executed after a crash ran
    the *same* instances.

    The hash is fed in bounded chunks (``_WIRE_CHUNK``): the label
    prefix streams byte-identically to ``repr(labels).encode("utf-8")``
    without materializing the whole repr string, and the CSR blobs are
    hashed through a ``memoryview`` window — digesting a million-node
    wire never allocates a second wire-sized object.  Digests are
    byte-for-byte identical to the historical whole-string formula.
    """
    hasher = hashlib.sha256()
    labels = wire.labels
    if not labels:
        hasher.update(b"()")
    elif len(labels) == 1:
        hasher.update(f"({labels[0]!r},)".encode("utf-8"))
    else:
        parts = ["("]
        size = 1
        last = len(labels) - 1
        for k, label in enumerate(labels):
            part = repr(label) if k == last else f"{label!r}, "
            parts.append(part)
            size += len(part)
            if size >= _WIRE_CHUNK:
                hasher.update("".join(parts).encode("utf-8"))
                parts = []
                size = 0
        parts.append(")")
        hasher.update("".join(parts).encode("utf-8"))
    for blob in (wire.indptr, wire.indices):
        view = memoryview(blob)
        for offset in range(0, len(view), _WIRE_CHUNK):
            hasher.update(view[offset : offset + _WIRE_CHUNK])
    return hasher.hexdigest()


class KernelWire(NamedTuple):
    """Compact picklable snapshot of a kernel: labels + raw CSR bytes.

    This is the batch runner's wire format: one ``KernelWire`` per
    instance replaces pickling the ``nx.Graph`` adjacency dicts once per
    ``(instance, algorithm)`` task.  It carries topology and vertex
    labels only — node/edge attribute dicts are not shipped (nothing in
    the solver/experiment stack reads them).  Rebuild with
    :func:`graph_from_wire`, which also pre-seeds the kernel cache so
    the receiving process never re-derives the CSR.
    """

    labels: tuple
    indptr: bytes
    indices: bytes


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


# Bit positions set in each byte value — lets dense masks be decoded
# bytewise (256-entry table + one to_bytes call) instead of with
# O(popcount) big-int isolate-lowest-bit operations.
_BYTE_BITS = tuple(
    tuple(j for j in range(8) if value >> j & 1) for value in range(256)
)


class GraphKernel:
    """Immutable CSR + bitset snapshot of an ``nx.Graph``.

    Build through :func:`kernel_for` (cached), not directly, unless you
    explicitly want an uncached snapshot.

    This is the *int* backend: it precomputes one ``n``-bit closed
    neighborhood per vertex (O(n²/8) bytes), which is what makes small
    graphs fast and large graphs impossible — the packed backend keeps
    the same API with no precomputed masks (see the module docstring).
    """

    backend = "int"

    __slots__ = (
        "n",
        "labels",
        "index_of",
        "indptr",
        "indices",
        "closed_bits",
        "full_mask",
        "_back_ports",
        "_dense_cut",
        "__weakref__",
    )

    def __init__(self, graph: nx.Graph):
        labels: list[Vertex] = sorted(graph.nodes, key=repr)
        index_of = {label: i for i, label in enumerate(labels)}
        n = len(labels)
        indptr = array("q", [0])
        indices = array("q")
        closed_bits: list[int] = []
        for i, label in enumerate(labels):
            row = sorted(index_of[u] for u in graph.neighbors(label))
            indices.extend(row)
            indptr.append(len(indices))
            bits = 1 << i
            for j in row:
                bits |= 1 << j
            closed_bits.append(bits)
        self.n = n
        self.labels = labels
        self.index_of = index_of
        self.indptr = indptr
        self.indices = indices
        self.closed_bits = closed_bits
        self.full_mask = (1 << n) - 1
        self._back_ports: array | None = None
        # Ball walks go bitset-dense past this many visited vertices.
        self._dense_cut = max(64, n >> 3)

    @classmethod
    def _from_csr(cls, labels: list[Vertex], indptr: array, indices: array) -> "GraphKernel":
        """Rebuild a kernel from already-canonical CSR parts.

        ``labels`` must be repr-sorted and each CSR row ascending — the
        invariants :meth:`to_wire` snapshots — so only the closed
        bitsets need recomputing (no re-sort, no dict-driven walk of an
        ``nx.Graph``).
        """
        self = object.__new__(cls)
        n = len(labels)
        closed_bits: list[int] = []
        for i in range(n):
            bits = 1 << i
            for j in indices[indptr[i] : indptr[i + 1]]:
                bits |= 1 << j
            closed_bits.append(bits)
        self.n = n
        self.labels = labels
        self.index_of = {label: i for i, label in enumerate(labels)}
        self.indptr = indptr
        self.indices = indices
        self.closed_bits = closed_bits
        self.full_mask = (1 << n) - 1
        self._back_ports = None
        self._dense_cut = max(64, n >> 3)
        return self

    def to_wire(self) -> KernelWire:
        """This kernel as a :class:`KernelWire` (labels + CSR bytes)."""
        return KernelWire(tuple(self.labels), self.indptr.tobytes(), self.indices.tobytes())

    # -- label <-> index <-> mask conversions --------------------------------

    def index(self, label: Vertex) -> int:
        """Kernel index of ``label``; raises ``KeyError`` when absent."""
        return self.index_of[label]

    def label(self, index: int) -> Vertex:
        """Vertex label at kernel ``index``."""
        return self.labels[index]

    def bits_of(self, vertices: Iterable[Vertex]) -> int:
        """Bitset mask of an iterable of vertex labels."""
        index_of = self.index_of
        mask = 0
        for v in vertices:
            mask |= 1 << index_of[v]
        return mask

    def labels_of(self, mask: int) -> set[Vertex]:
        """Vertex labels of the set bits of ``mask``.

        Sparse masks decode bit-by-bit; dense masks decode bytewise
        (256-entry table over ``to_bytes``), which costs O(n/8) byte
        visits instead of O(popcount) big-int isolate-lowest ops.
        """
        if not mask:
            return set()
        labels = self.labels
        if mask.bit_count() * 8 < mask.bit_length():
            return {labels[i] for i in iter_bits(mask)}
        byte_bits = _BYTE_BITS
        result: set[Vertex] = set()
        base = 0
        for byte in mask.to_bytes((mask.bit_length() + 7) // 8, "little"):
            if byte:
                for j in byte_bits[byte]:
                    result.add(labels[base + j])
            base += 8
        return result

    def neighbor_row(self, index: int) -> array:
        """CSR row of ``index``: neighbor indices, sorted ascending."""
        return self.indices[self.indptr[index] : self.indptr[index + 1]]

    def degree(self, index: int) -> int:
        return self.indptr[index + 1] - self.indptr[index]

    def edge_count(self) -> int:
        """Number of undirected edges (self-loops counted once)."""
        indptr, indices = self.indptr, self.indices
        loops = 0
        for i in range(self.n):
            pos = bisect_left(indices, i, indptr[i], indptr[i + 1])
            if pos < indptr[i + 1] and indices[pos] == i:
                loops += 1
        return (len(indices) - loops) // 2 + loops

    # -- domination primitives ----------------------------------------------

    def closed_neighborhood_bits(self, mask: int) -> int:
        """``N[S]`` as a bitset, for ``S`` given as a bitset."""
        closed = self.closed_bits
        result = 0
        for i in iter_bits(mask):
            result |= closed[i]
        return result

    def union_closed_bits(self, vertices: Iterable[Vertex]) -> int:
        """``N[S]`` as a bitset, straight from vertex *labels*.

        The label-direct twin of :meth:`closed_neighborhood_bits`: one
        dict lookup + OR per vertex, no intermediate mask to build and
        re-decompose — this is the hot entry the domination checkers
        use.
        """
        closed = self.closed_bits
        index_of = self.index_of
        result = 0
        for v in vertices:
            result |= closed[index_of[v]]
        return result

    def dominates(self, mask: int) -> bool:
        """Whether the vertex set ``mask`` dominates the whole graph."""
        return self.closed_neighborhood_bits(mask) == self.full_mask

    def dominates_vertices(self, vertices: Iterable[Vertex]) -> bool:
        """Whether the vertices (given as labels) dominate the graph."""
        return self.union_closed_bits(vertices) == self.full_mask

    def undominated(self, mask: int) -> int:
        """Bitset of vertices not dominated by the vertex set ``mask``."""
        return self.full_mask & ~self.closed_neighborhood_bits(mask)

    def span_counts(self, undominated_mask: int) -> list[int]:
        """Residual spans ``|N[v] ∩ U|`` for every vertex, as a list.

        Incremental consumers (the distributed greedy's phase loop)
        refresh individual entries in place with
        ``(closed_bits[i] & undominated).bit_count()`` instead of
        recomputing the whole list.
        """
        closed = self.closed_bits
        return [(bits & undominated_mask).bit_count() for bits in closed]

    # -- balls (frontier BFS on CSR) ----------------------------------------
    #
    # Hybrid strategy: while the ball is small relative to n, walk CSR
    # rows with a plain index set (small-int ops only — no O(n/64)
    # big-int work per frontier vertex, so tiny balls on huge graphs
    # stay as cheap as adjacency BFS).  Once the visited set crosses
    # ``_dense_cut`` the walk converts to bitsets and finishes with
    # whole-row ORs, which win exactly when frontiers are dense.

    def _mask_from_indices(self, indices: Iterable[int]) -> int:
        flags = bytearray((self.n + 7) >> 3)
        for i in indices:
            flags[i >> 3] |= 1 << (i & 7)
        return int.from_bytes(flags, "little")

    def _expand_dense(self, seen: int, frontier: int, steps: int) -> int:
        # Frontiers here are dense by construction, so decode them
        # bytewise (O(n/8) byte visits) rather than with per-bit
        # isolate-lowest ops, each of which costs O(n/64) words.
        closed = self.closed_bits
        byte_bits = _BYTE_BITS
        for _ in range(steps):
            if not frontier:
                break
            reach = 0
            base = 0
            for byte in frontier.to_bytes((frontier.bit_length() + 7) // 8, "little"):
                if byte:
                    for j in byte_bits[byte]:
                        reach |= closed[base + j]
                base += 8
            frontier = reach & ~seen
            seen |= frontier
        return seen

    def _ball_walk(self, start: Iterable[int], radius: int) -> tuple[bool, object]:
        """BFS core; returns ``(dense, seen)`` — a bitset when ``dense``,
        an index set otherwise."""
        indptr, indices = self.indptr, self.indices
        cut = self._dense_cut
        seen = set(start)
        frontier = list(seen)
        step = 0
        while step < radius and frontier:
            if len(seen) > cut:
                return True, self._expand_dense(
                    self._mask_from_indices(seen),
                    self._mask_from_indices(frontier),
                    radius - step,
                )
            grown = []
            for u in frontier:
                for j in indices[indptr[u] : indptr[u + 1]]:
                    if j not in seen:
                        seen.add(j)
                        grown.append(j)
            frontier = grown
            step += 1
        return False, seen

    def ball_bits(self, center: Vertex, radius: int) -> int:
        """``N^r[center]`` as a bitset; frontier BFS over CSR rows."""
        if radius < 0:
            return 0
        i = self.index_of[center]
        if radius == 0:
            return 1 << i
        dense, seen = self._ball_walk([i], radius)
        return seen if dense else self._mask_from_indices(seen)

    def ball_bits_from_mask(self, mask: int, radius: int) -> int:
        """``N^r[S]`` as a bitset for ``S`` given as a bitset."""
        if radius <= 0 or not mask:
            return 0 if radius < 0 else mask
        if mask.bit_count() > self._dense_cut:
            return self._expand_dense(mask, mask, radius)
        dense, seen = self._ball_walk(iter_bits(mask), radius)
        return seen if dense else self._mask_from_indices(seen)

    def ball_labels(self, center: Vertex, radius: int) -> set[Vertex]:
        """``N^r[center]`` as a set of vertex labels (no mask round-trip
        for small balls — the fast path :func:`repro.graphs.util.ball`
        rides)."""
        if radius < 0:
            return set()
        i = self.index_of[center]
        labels = self.labels
        if radius == 0:
            return {labels[i]}
        dense, seen = self._ball_walk([i], radius)
        if dense:
            return self.labels_of(seen)
        return {labels[i] for i in seen}

    def ball_labels_of_set(self, vertices: Iterable[Vertex], radius: int) -> set[Vertex]:
        """``N^r[S]`` as a set of labels, for ``S`` given as labels."""
        index_of = self.index_of
        start = [index_of[v] for v in vertices]
        if radius < 0:
            return set()
        labels = self.labels
        if radius == 0:
            return {labels[i] for i in start}
        dense, seen = self._ball_walk(start, radius)
        if dense:
            return self.labels_of(seen)
        return {labels[i] for i in seen}

    # -- masked connectivity (flood fills) ----------------------------------

    def component_bits(self, seed: int, within: int) -> int:
        """Connected component of ``G[within]`` containing ``seed``.

        ``seed`` and ``within`` are bitsets; the result is the fixpoint of
        OR-ing closed-neighborhood rows, masked by ``within`` — no
        subgraph object is ever materialized.  ``seed`` bits outside
        ``within`` are ignored.
        """
        closed = self.closed_bits
        component = seed & within
        frontier = component
        while frontier:
            reach = 0
            for i in iter_bits(frontier):
                reach |= closed[i]
            frontier = reach & within & ~component
            component |= frontier
        return component

    def components_of_mask(self, mask: int) -> Iterator[int]:
        """Yield the connected components of ``G[mask]`` as bitsets.

        Components come out ordered by their lowest kernel index — i.e.
        by the repr-least vertex they contain, which is the deterministic
        order the rest of the library sorts components into.
        """
        remaining = mask
        while remaining:
            component = self.component_bits(remaining & -remaining, mask)
            yield component
            remaining &= ~component

    def count_components_of_mask(self, mask: int) -> int:
        """Number of connected components of ``G[mask]``."""
        count = 0
        remaining = mask
        while remaining:
            remaining &= ~self.component_bits(remaining & -remaining, mask)
            count += 1
        return count

    def is_mask_connected(self, mask: int) -> bool:
        """Whether ``G[mask]`` is connected (one flood fill, early bound).

        The empty mask counts as connected (zero components).
        """
        if not mask:
            return True
        return self.component_bits(mask & -mask, mask) == mask

    # -- engine routing ------------------------------------------------------

    def back_ports(self) -> array:
        """Per-edge-slot back ports, aligned with ``indices``.

        For the directed slot ``s`` in row ``u`` pointing at ``v``,
        ``back_ports()[s]`` is the position of ``u`` inside row ``v`` —
        i.e. the receiver port a message sent on ``u``'s port
        ``s - indptr[u]`` lands on.  Rows are sorted, so the reverse
        slot is found by binary search; computed once, then cached.
        """
        if self._back_ports is None:
            indptr, indices = self.indptr, self.indices
            back = array("q", bytes(8 * len(indices)))
            for u in range(self.n):
                for s in range(indptr[u], indptr[u + 1]):
                    v = indices[s]
                    back[s] = bisect_left(indices, u, indptr[v], indptr[v + 1]) - indptr[v]
            self._back_ports = back
        return self._back_ports


_KERNELS: "weakref.WeakKeyDictionary[nx.Graph, GraphKernel]"
# repro: ignore[RPR002] the primary kernel cache itself — invalidate_kernel
# clears it directly, so registering it as a *derived* cache would be circular.
_KERNELS = weakref.WeakKeyDictionary()


# Per-graph caches derived from kernel-era state (e.g. the memoized
# outerplanarity verdict).  invalidate_kernel clears them alongside the
# kernel itself, so one call recovers from any mutation.
_DERIVED_CACHES: list = []


def register_derived_cache(cache: "weakref.WeakKeyDictionary") -> None:
    """Register a per-graph cache for :func:`invalidate_kernel` to clear.

    This is the *other half* of the mutation contract: any module-level
    per-graph cache whose values are derived from kernel-era structure
    (memoized verdicts, ball-mask arenas, exact optima, ...) must pass
    itself here, or the one sanctioned mutation-recovery call —
    ``invalidate_kernel(graph)`` — cannot clear it and it will serve
    stale values.  ``repro lint`` enforces this statically as RPR002.
    """
    _DERIVED_CACHES.append(cache)


# -- the REPRO_KERNEL_GUARD runtime sanitizer -------------------------------
#
# The static pass (repro.lint, RPR001) proves the invalidation contract
# for mutations it can see; the guard catches the rest at runtime —
# aliased mutation, third-party code, REPL experiments.  When enabled,
# kernel_for records a cheap structural fingerprint per graph at build
# time and re-verifies it on every cache hit, raising StaleKernelError
# (with build-site provenance) instead of serving a stale kernel.

_GUARD_ENV = "REPRO_KERNEL_GUARD"
_KERNEL_GUARD = os.environ.get(_GUARD_ENV, "") not in ("", "0")

# graph -> ((n, m, node_xor, edge_xor), "file:line in func" build site).
# Registered as a derived cache: invalidate_kernel resets the record
# along with the kernel itself, so an invalidate-then-rebuild cycle
# re-fingerprints cleanly.
_GUARD_STATE: "weakref.WeakKeyDictionary[nx.Graph, tuple]" = weakref.WeakKeyDictionary()
register_derived_cache(_GUARD_STATE)


def set_kernel_guard(enabled: bool) -> bool:
    """Toggle the staleness sanitizer; returns the previous setting.

    The initial setting comes from the ``REPRO_KERNEL_GUARD`` environment
    variable at import time (any value other than empty/``0`` enables
    it); tests flip it per-case through this function.
    """
    global _KERNEL_GUARD
    previous = _KERNEL_GUARD
    _KERNEL_GUARD = bool(enabled)
    return previous


def kernel_guard_enabled() -> bool:
    """Whether the staleness sanitizer is currently active."""
    return _KERNEL_GUARD


def _structural_fingerprint(graph: nx.Graph) -> tuple[int, int, int, int]:
    """(n, m, node-xor, edge-xor): order-independent, O(n + m), cheap.

    Hashes are per-process (str hashes are salted), which is fine: the
    fingerprint is only ever compared within one process lifetime.
    """
    node_acc = 0
    for v in graph.nodes:
        node_acc ^= hash(v)
    edge_acc = 0
    for u, v in graph.edges:
        hu, hv = hash(u), hash(v)
        if hu > hv:
            hu, hv = hv, hu
        edge_acc ^= hash((hu, hv))
    return (graph.number_of_nodes(), graph.number_of_edges(), node_acc, edge_acc)


def _build_site() -> str:
    """The first non-kernel.py frame below us: where kernel_for was called."""
    here = os.path.basename(__file__)
    for frame in reversed(traceback.extract_stack()[:-2]):
        if os.path.basename(frame.filename) != here:
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


def _guard_record(graph: nx.Graph) -> None:
    try:
        _GUARD_STATE[graph] = (_structural_fingerprint(graph), _build_site())
    except TypeError:  # graph type that cannot be weak-referenced
        pass


def _guard_verify(graph: nx.Graph) -> None:
    try:
        state = _GUARD_STATE.get(graph)
    except TypeError:
        return
    if state is None:
        # Kernel cached before the guard was switched on: adopt it now.
        _guard_record(graph)
        return
    recorded, site = state
    current = _structural_fingerprint(graph)
    if current == recorded:
        return
    invalidate_kernel(graph)  # drop the stale kernel + derived caches
    n0, m0 = recorded[0], recorded[1]
    raise StaleKernelError(
        f"stale GraphKernel: graph was mutated after kernel_for() without "
        f"invalidate_kernel() — kernel built with n={n0}, m={m0} at {site}; "
        f"graph now has n={current[0]}, m={current[1]} "
        f"(adjacency checksum {'matches' if current[2:] == recorded[2:] else 'differs'}). "
        f"Call repro.graphs.invalidate_kernel(graph) after every mutation; "
        f"the stale kernel has been dropped, so retrying is safe."
    )


# -- backend selection ------------------------------------------------------
#
# Small graphs keep the int-mask backend (fast, precomputed masks);
# large graphs get the packed numpy backend (O(n + m) words, no mask
# table).  The switch is a node-count threshold; both the choice and
# the threshold can be forced for testing either backend at any size.

_BACKEND_ENV = "REPRO_KERNEL_BACKEND"
_THRESHOLD_ENV = "REPRO_KERNEL_PACKED_THRESHOLD"
_BACKENDS = ("auto", "int", "packed")
_DEFAULT_PACKED_THRESHOLD = 8192

_KERNEL_BACKEND = os.environ.get(_BACKEND_ENV, "auto") or "auto"
if _KERNEL_BACKEND not in _BACKENDS:  # pragma: no cover - env misconfiguration
    raise ValueError(f"{_BACKEND_ENV} must be one of {_BACKENDS}, got {_KERNEL_BACKEND!r}")
_PACKED_THRESHOLD = int(os.environ.get(_THRESHOLD_ENV, _DEFAULT_PACKED_THRESHOLD))


def set_kernel_backend(backend: str | None = None, *, threshold: int | None = None):
    """Force the kernel backend and/or the auto-selection threshold.

    ``backend`` is ``"auto"`` (select by node count), ``"int"``, or
    ``"packed"``; ``None`` leaves the current choice.  ``threshold`` is
    the node count at which ``"auto"`` switches to packed.  Returns the
    previous ``(backend, threshold)`` pair so tests can restore it.
    Initial values come from ``REPRO_KERNEL_BACKEND`` and
    ``REPRO_KERNEL_PACKED_THRESHOLD`` at import time.
    """
    global _KERNEL_BACKEND, _PACKED_THRESHOLD
    previous = (_KERNEL_BACKEND, _PACKED_THRESHOLD)
    if backend is not None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        _KERNEL_BACKEND = backend
    if threshold is not None:
        _PACKED_THRESHOLD = int(threshold)
    return previous


def kernel_backend() -> tuple[str, int]:
    """The current ``(backend, threshold)`` selection settings."""
    return (_KERNEL_BACKEND, _PACKED_THRESHOLD)


def _resolve_backend(n: int, override: str | None = None) -> str:
    choice = override if override is not None else _KERNEL_BACKEND
    if choice not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {choice!r}")
    if choice == "auto":
        return "packed" if n >= _PACKED_THRESHOLD else "int"
    return choice


class KernelView:
    """Graph-shaped facade over a standalone kernel — no ``nx.Graph``.

    Million-node instances built through :func:`kernel_from_edges` or
    :func:`read_wire` never materialize adjacency dicts; this view
    gives them the minimal ``nx.Graph`` surface the front door uses
    (``number_of_nodes``/``number_of_edges``, node iteration,
    ``neighbors``, ``edges``) while :func:`kernel_for` short-circuits
    straight to the wrapped kernel.  The view is weak-referenceable, so
    per-graph derived caches (exact-OPT, guard state) key on it like
    they key on graphs.  It is read-only: mutation-shaped calls do not
    exist, so the kernel staleness contract is trivially satisfied.
    """

    __slots__ = ("kernel", "__weakref__")

    def __init__(self, kernel):
        self.kernel = kernel

    def number_of_nodes(self) -> int:
        return self.kernel.n

    def number_of_edges(self) -> int:
        return self.kernel.edge_count()

    @property
    def nodes(self):
        return self.kernel.labels

    def __iter__(self):
        return iter(self.kernel.labels)

    def __len__(self) -> int:
        return self.kernel.n

    def __contains__(self, vertex) -> bool:
        try:
            return vertex in self.kernel.index_of
        except TypeError:
            return False

    def has_node(self, vertex) -> bool:
        return vertex in self

    def neighbors(self, vertex):
        kernel = self.kernel
        labels = kernel.labels
        for j in kernel.neighbor_row(kernel.index_of[vertex]):
            yield labels[j]

    @property
    def edges(self):
        kernel = self.kernel
        labels = kernel.labels
        return (
            (labels[i], labels[int(j)])
            for i in range(kernel.n)
            for j in kernel.neighbor_row(i)
            if j >= i  # >= keeps self-loops listed once
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelView(n={self.kernel.n}, backend={self.kernel.backend})"


def kernel_for(graph: nx.Graph, backend: str | None = None) -> GraphKernel:
    """The cached :class:`GraphKernel` of ``graph`` (built on first use).

    **The mutation contract** (enforced by ``repro lint`` rule RPR001
    and, at runtime, the ``REPRO_KERNEL_GUARD`` sanitizer): the cache-hit
    path must stay O(1) — it sits in front of every hot primitive — so
    the only mutation guard applied per call is the node count.  A
    mutation that changes the node count triggers a rebuild; any
    mutation that keeps it (edge rewires, but also equal-count node
    replacement) does **not** and is on the caller: either stop
    mutating after ``kernel_for`` (the contract) or call
    :func:`invalidate_kernel` after the mutation — on *every* path from
    the mutation to the surrounding function's exit, including early
    returns and raised errors.

    Under ``REPRO_KERNEL_GUARD=1`` (or :func:`set_kernel_guard`), every
    cache hit re-verifies a structural fingerprint recorded at build
    time and raises :class:`StaleKernelError` on a contract breach
    instead of serving the stale kernel.  The guard costs O(n + m) per
    hit, so it is a CI/debug tool, not a production default.

    **Backend**: the result is an int-mask :class:`GraphKernel` below
    the packed threshold and a
    :class:`~repro.graphs.packed.PackedGraphKernel` at or above it
    (see :func:`set_kernel_backend`); ``backend=`` forces the choice
    for this call, and a cached kernel of the wrong backend is rebuilt
    transparently.  A :class:`KernelView` short-circuits to its wrapped
    kernel.
    """
    if isinstance(graph, KernelView):
        return graph.kernel
    wanted = _resolve_backend(graph.number_of_nodes(), backend)
    kernel = _KERNELS.get(graph)
    if (
        kernel is not None
        and kernel.n == graph.number_of_nodes()
        and kernel.backend == wanted
    ):
        if _KERNEL_GUARD:
            _guard_verify(graph)
        return kernel
    if wanted == "packed":
        from repro.graphs.packed import PackedGraphKernel

        kernel = PackedGraphKernel.from_graph(graph)
    else:
        kernel = GraphKernel(graph)
    try:
        _KERNELS[graph] = kernel
        if _KERNEL_GUARD:
            _guard_record(graph)
    except TypeError:  # graph type that cannot be weak-referenced
        pass
    return kernel


def graph_from_wire(wire: KernelWire) -> nx.Graph:
    """Rebuild the graph a :class:`KernelWire` was snapshotted from.

    The returned ``nx.Graph`` has the wire's labels and edges, and its
    :class:`GraphKernel` is reconstructed straight from the CSR bytes
    and pre-seeded into the :func:`kernel_for` cache — a worker process
    receiving a wire pays one linear pass, not a full kernel build, and
    every kernel-backed primitive on the rebuilt graph is warm.
    """
    labels = list(wire.labels)
    indptr = array("q")
    indptr.frombytes(wire.indptr)
    indices = array("q")
    indices.frombytes(wire.indices)
    graph = nx.Graph()
    graph.add_nodes_from(labels)
    graph.add_edges_from(
        (labels[u], labels[j])
        for u in range(len(labels))
        for j in indices[indptr[u] : indptr[u + 1]]
        if j >= u  # >= keeps self-loops round-tripping
    )
    kernel = kernel_from_wire(wire)
    try:
        _KERNELS[graph] = kernel
        if _KERNEL_GUARD:
            _guard_record(graph)
    except TypeError:  # graph type that cannot be weak-referenced
        pass
    return graph


def kernel_from_wire(wire: KernelWire, backend: str | None = None):
    """Rebuild just the kernel from a wire (no graph object at all).

    The backend follows the current selection settings (or ``backend=``),
    so a worker process receiving a million-node wire reconstructs a
    packed kernel straight from the CSR bytes — one ``frombuffer``, no
    adjacency dicts, no mask table.
    """
    n = len(wire.labels)
    if _resolve_backend(n, backend) == "packed":
        from repro.graphs.packed import PackedGraphKernel

        return PackedGraphKernel.from_wire_parts(wire.labels, wire.indptr, wire.indices)
    indptr = array("q")
    indptr.frombytes(wire.indptr)
    indices = array("q")
    indices.frombytes(wire.indices)
    return GraphKernel._from_csr(list(wire.labels), indptr, indices)


def instance_from_wire(wire: KernelWire):
    """The wire as a solvable instance: ``nx.Graph`` or :class:`KernelView`.

    Below the packed threshold this is :func:`graph_from_wire` (full
    graph object, kernel pre-seeded); at or above it the instance stays
    a :class:`KernelView` over a packed kernel — the O(n + m) path the
    batch runners and sweep workers hand to ``solve``.
    """
    if _resolve_backend(len(wire.labels)) == "packed":
        return KernelView(kernel_from_wire(wire, "packed"))
    return graph_from_wire(wire)


# -- streaming ingestion ----------------------------------------------------


def kernel_from_edges(
    edges: Iterable, *, n: int | None = None, nodes: Iterable | None = None,
    backend: str | None = None,
):
    """Build a kernel straight from an edge iterable — no ``nx.Graph``.

    Streams ``edges`` once (buffered in bounded chunks), maps labels to
    repr-sorted kernel order (vectorized for all-int labels), and
    assembles canonical CSR with numpy sorts — a million-node instance
    ingests in O(n + m) memory without ever touching adjacency dicts.
    ``n`` declares the vertex set as ``range(n)`` (so trailing isolated
    vertices survive); ``nodes`` adds explicit extra vertices; backend
    selection follows :func:`kernel_for` unless forced.  Wrap the
    result in :class:`KernelView` to feed ``solve``/``solve_many``.
    """
    from repro.graphs.packed import PackedGraphKernel, build_undirected_csr, collect_edges

    labels, us, vs = collect_edges(edges, n=n, nodes=nodes)
    indptr, indices = build_undirected_csr(len(labels), us, vs)
    if _resolve_backend(len(labels), backend) == "packed":
        return PackedGraphKernel(labels, indptr, indices)
    int_indptr = array("q")
    int_indptr.frombytes(indptr.tobytes())
    int_indices = array("q")
    int_indices.frombytes(indices.tobytes())
    return GraphKernel._from_csr(labels, int_indptr, int_indices)


def kernel_from_edge_file(
    path, *, n: int | None = None, nodes: Iterable | None = None,
    backend: str | None = None,
):
    """Build a kernel from a whitespace-separated edge-list file.

    One ``u v`` pair per line; blank lines and ``#`` comments are
    skipped.  The file is read line-by-line into
    :func:`kernel_from_edges`, so ingestion stays streaming end to end.
    """

    def _edges():
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                first, second = line.split()[:2]
                yield int(first), int(second)

    return kernel_from_edges(_edges(), n=n, nodes=nodes, backend=backend)


# -- on-disk wire format ----------------------------------------------------

_WIRE_MAGIC = b"REPROWIRE1\n"


def write_wire(wire: KernelWire, path) -> None:
    """Write a :class:`KernelWire` to disk in bounded chunks.

    Format: magic line; a header line ``<n> <len(indptr)>
    <len(indices)> <label-mode>``; the labels (raw little-endian int64
    for all-int labels, a length-prefixed pickle otherwise); then the
    CSR blobs, each streamed through a ``memoryview`` window so no
    wire-sized temporary is ever created.
    """
    all_int = all(type(label) is int for label in wire.labels)
    with open(path, "wb") as handle:
        handle.write(_WIRE_MAGIC)
        mode = "int" if all_int else "pickle"
        handle.write(
            f"{len(wire.labels)} {len(wire.indptr)} {len(wire.indices)} {mode}\n".encode()
        )
        if all_int:
            label_view = memoryview(array("q", wire.labels).tobytes())
            for offset in range(0, len(label_view), _WIRE_CHUNK):
                handle.write(label_view[offset : offset + _WIRE_CHUNK])
        else:
            blob = pickle.dumps(tuple(wire.labels), protocol=pickle.HIGHEST_PROTOCOL)
            handle.write(f"{len(blob)}\n".encode())
            handle.write(blob)
        for payload in (wire.indptr, wire.indices):
            view = memoryview(payload)
            for offset in range(0, len(view), _WIRE_CHUNK):
                handle.write(view[offset : offset + _WIRE_CHUNK])


def _read_exact(handle, length: int) -> bytes:
    buffer = bytearray(length)
    view = memoryview(buffer)
    offset = 0
    while offset < length:
        got = handle.readinto(view[offset : offset + _WIRE_CHUNK])
        if not got:
            raise ValueError("truncated wire file")
        offset += got
    return bytes(buffer)


def read_wire(path) -> KernelWire:
    """Read a :func:`write_wire` file back into a :class:`KernelWire`.

    Reads in bounded chunks straight into preallocated buffers; combine
    with :func:`kernel_from_wire`/:func:`instance_from_wire` to go from
    disk to a solvable million-node instance without an ``nx.Graph``.
    """
    with open(path, "rb") as handle:
        if handle.readline() != _WIRE_MAGIC:
            raise ValueError(f"{path} is not a repro wire file")
        count_s, indptr_len_s, indices_len_s, mode = handle.readline().split()
        count, indptr_len, indices_len = int(count_s), int(indptr_len_s), int(indices_len_s)
        if mode == b"int":
            raw = array("q")
            raw.frombytes(_read_exact(handle, count * 8))
            labels = tuple(raw)
        else:
            blob_len = int(handle.readline())
            labels = pickle.loads(_read_exact(handle, blob_len))
        indptr = _read_exact(handle, indptr_len)
        indices = _read_exact(handle, indices_len)
    return KernelWire(labels, indptr, indices)


def invalidate_kernel(graph: nx.Graph) -> None:
    """Drop every cached view of ``graph`` (call after mutating it).

    This is the one sanctioned recovery from a mutation: it evicts the
    cached :class:`GraphKernel` *and* every registered derived cache
    (see :func:`register_derived_cache`) plus the sanitizer's
    fingerprint, so the next ``kernel_for`` rebuilds from the mutated
    topology.  The caller's obligation — checked by ``repro lint``
    RPR001 — is to reach this call on every path from a mutation to the
    mutating function's exit.
    """
    try:
        _KERNELS.pop(graph, None)
        for cache in _DERIVED_CACHES:
            cache.pop(graph, None)
    except TypeError:  # not weak-referenceable: nothing was ever cached
        pass
