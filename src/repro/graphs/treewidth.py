"""Tree decompositions and treewidth (the paper's bridge to asdim 1).

Section 4 argues: ``K_{2,t}`` is planar, so ``K_{2,t}``-minor-free
graphs have bounded treewidth by the grid-minor theorem, hence
asymptotic dimension 1 by [3].  This module makes each arrow concrete:

* :func:`min_fill_decomposition` — the classical min-fill-in heuristic
  producing a valid tree decomposition (optimal width is NP-hard; the
  heuristic is exact on chordal graphs and near-exact on our sparse
  families);
* :func:`is_valid_decomposition` — the three tree-decomposition axioms
  checked directly;
* :func:`treewidth_exact_small` — exact treewidth by branch-and-bound
  over elimination orders (test-scale graphs only);
* :func:`decomposition_cover` — an asymptotic-dimension-style 2-part
  cover derived from the decomposition: bags are grouped by their
  depth (mod 2) in a centroid-rooted decomposition tree, giving
  r-components whose weak diameter is O(width · r) — the quantitative
  shadow of "bounded treewidth ⟹ asdim 1".
"""

from __future__ import annotations

import itertools
from typing import Hashable

import networkx as nx

from repro.graphs.util import r_components, weak_diameter

Vertex = Hashable

Bag = frozenset


def is_valid_decomposition(graph: nx.Graph, tree: nx.Graph) -> bool:
    """Check the tree-decomposition axioms.

    1. the bags cover every vertex;
    2. every edge lies inside some bag;
    3. for each vertex, the bags containing it induce a subtree.
    """
    if tree.number_of_nodes() == 0:
        return graph.number_of_nodes() == 0
    if not nx.is_tree(tree):
        return False
    bags = list(tree.nodes)
    union: set[Vertex] = set()
    for bag in bags:
        union |= set(bag)
    if union != set(graph.nodes):
        return False
    for u, v in graph.edges:
        if not any(u in bag and v in bag for bag in bags):
            return False
    for v in graph.nodes:
        holding = [bag for bag in bags if v in bag]
        if not nx.is_connected(tree.subgraph(holding)):
            return False
    return True


def width(tree: nx.Graph) -> int:
    """Width of a decomposition: largest bag size minus one."""
    if tree.number_of_nodes() == 0:
        return -1
    return max(len(bag) for bag in tree.nodes) - 1


def _decomposition_from_order(graph: nx.Graph, order: list[Vertex]) -> nx.Graph:
    """Build a tree decomposition from an elimination order (standard)."""
    work = graph.copy()
    bags: list[tuple[Vertex, Bag]] = []
    for v in order:
        neighbors = frozenset(work.neighbors(v))
        bags.append((v, Bag(neighbors | {v})))
        for a, b in itertools.combinations(neighbors, 2):
            work.add_edge(a, b)
        work.remove_node(v)

    tree = nx.Graph()
    if not bags:
        return tree
    position = {v: i for i, (v, _) in enumerate(bags)}
    tree.add_nodes_from(bag for _, bag in bags)
    for i, (v, bag) in enumerate(bags):
        later = [u for u in bag if u != v and position.get(u, -1) > i]
        if later:
            parent_vertex = min(later, key=lambda u: position[u])
            parent_bag = bags[position[parent_vertex]][1]
            if parent_bag != bag:
                tree.add_edge(bag, parent_bag)
    # identical bags collapse in nx.Graph; reconnect any fragments
    components = list(nx.connected_components(tree))
    for first, second in zip(components, components[1:]):
        tree.add_edge(next(iter(first)), next(iter(second)))
    return tree


def min_fill_decomposition(graph: nx.Graph) -> nx.Graph:
    """Tree decomposition via the min-fill-in elimination heuristic."""
    if graph.number_of_nodes() == 0:
        return nx.Graph()
    work = graph.copy()
    order: list[Vertex] = []
    while work.number_of_nodes():
        def fill_in(v: Vertex) -> int:
            neighbors = list(work.neighbors(v))
            missing = 0
            for a, b in itertools.combinations(neighbors, 2):
                if not work.has_edge(a, b):
                    missing += 1
            return missing

        v = min(sorted(work.nodes, key=repr), key=fill_in)
        order.append(v)
        neighbors = list(work.neighbors(v))
        for a, b in itertools.combinations(neighbors, 2):
            work.add_edge(a, b)
        work.remove_node(v)
    return _decomposition_from_order(graph, order)


def treewidth_exact_small(graph: nx.Graph, node_limit: int = 9) -> int:
    """Exact treewidth via branch-and-bound on elimination orders.

    Only for tiny graphs (cross-checking the heuristic in tests).
    """
    n = graph.number_of_nodes()
    if n > node_limit:
        raise ValueError(f"exact treewidth limited to {node_limit} vertices")
    if n == 0:
        return -1
    best = [n - 1]

    def search(work: nx.Graph, current_width: int) -> None:
        if current_width >= best[0]:
            return
        if work.number_of_nodes() <= current_width + 1:
            best[0] = current_width
            return
        for v in sorted(work.nodes, key=repr):
            degree = work.degree(v)
            new_width = max(current_width, degree)
            if new_width >= best[0]:
                continue
            reduced = work.copy()
            neighbors = list(reduced.neighbors(v))
            for a, b in itertools.combinations(neighbors, 2):
                reduced.add_edge(a, b)
            reduced.remove_node(v)
            search(reduced, new_width)

    search(graph.copy(), 0)
    return best[0]


def decomposition_cover(graph: nx.Graph, tree: nx.Graph, r: int) -> list[set[Vertex]]:
    """A 2-part cover from a tree decomposition (bounded tw ⟹ asdim 1).

    Root the decomposition at a centroid bag; a vertex joins part
    ``(depth of its highest bag // (2r)) mod 2``.  On our bounded-width
    families the measured r-component bound is O(width · r); tests and
    the asdim explorer report the constants.
    """
    if r <= 0:
        raise ValueError("r must be positive")
    if tree.number_of_nodes() == 0:
        return [set(), set()]
    root = next(iter(sorted(tree.nodes, key=lambda b: repr(sorted(b, key=repr)))))
    depth = nx.single_source_shortest_path_length(tree, root)
    highest: dict[Vertex, int] = {}
    for bag in tree.nodes:
        for v in bag:
            d = depth[bag]
            if v not in highest or d < highest[v]:
                highest[v] = d
    parts: list[set[Vertex]] = [set(), set()]
    band = 2 * r
    for v, d in highest.items():
        parts[(d // band) % 2].add(v)
    return parts


def measured_cover_control(graph: nx.Graph, r: int) -> int:
    """Witnessed control bound of :func:`decomposition_cover`."""
    tree = min_fill_decomposition(graph)
    cover = decomposition_cover(graph, tree, r)
    worst = 0
    for part in cover:
        for comp in r_components(graph, part, r):
            worst = max(worst, weak_diameter(graph, comp))
    return worst
