"""Chunked numpy bitset backend: packed uint64 masks over CSR adjacency.

The int-mask :class:`~repro.graphs.kernel.GraphKernel` precomputes one
``n``-bit closed-neighborhood bitset per vertex — O(n²/8) bytes, which
tops out around n ≈ 2000 (BENCH_kernel.json).  This module is the
large-graph substrate behind the same kernel API:

* vertex sets are :class:`PackedMask` — ``ceil(n/64)`` little-endian
  ``uint64`` words (bit ``i`` of the flattened words = kernel index
  ``i``), with the int-mask operator surface (``& | ^ ~``, truthiness,
  ``bit_count``) so mask-shaped call sites run unchanged;
* adjacency is CSR in numpy ``int64`` arrays, rows sorted ascending —
  the same canonical form the int kernel snapshots into ``KernelWire``;
* **no per-node closed-neighborhood masks are precomputed** — that
  table is exactly the quadratic memory this backend exists to avoid.
  Every primitive (``dominates``, ``undominated``, ``span_counts``,
  ``closed_neighborhood_bits``, balls, flood fills) is a vectorized CSR
  scan: multi-row gathers, boolean scatters, prefix sums over
  ``indptr`` segments, and popcounts via ``np.bitwise_count`` (16-bit
  LUT fallback).  Total memory stays O(n + m) words.

Backend selection lives in :func:`repro.graphs.kernel.kernel_for`
(automatic by node count, overridable); this module never decides —
it only implements.  Labels follow the same contract as the int
kernel: kernel index order *is* repr-sorted label order, so greedy
tie-breaks, component ordering, and port numbering agree bit-for-bit
across backends.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np

Vertex = Hashable

_CHUNK_ELEMENTS = 1 << 21  # elements per vectorized batch in pair scans


# -- popcount ---------------------------------------------------------------

if hasattr(np, "bitwise_count"):

    def popcount_words(words: np.ndarray) -> int:
        """Total number of set bits across a uint64 word array."""
        return int(np.bitwise_count(words).sum(dtype=np.int64))

else:  # pragma: no cover - numpy < 2.0 fallback
    _POP16 = np.array([bin(i).count("1") for i in range(1 << 16)], dtype=np.uint8)

    def popcount_words(words: np.ndarray) -> int:
        """Total number of set bits across a uint64 word array (LUT)."""
        if words.size == 0:
            return 0
        return int(_POP16[words.view(np.uint16)].sum(dtype=np.int64))


def _word_count(n: int) -> int:
    return (n + 63) >> 6


# -- PackedMask -------------------------------------------------------------


class PackedMask:
    """A vertex set as packed uint64 words — the int-mask stand-in.

    Bit ``i`` (word ``i // 64``, bit ``i % 64``) set means "kernel index
    ``i`` is in the set", identical to the int backend's ``1 << i``
    convention.  The class mirrors the slice of the Python-int surface
    the mask call sites actually use — ``& | ^ ~``, truthiness,
    ``==``, ``bit_count()`` — so ``full_mask & ~union_closed_bits(S)``
    style code is backend-agnostic.  Tail bits past ``n`` are always
    zero (``~`` re-masks them), so equality and popcounts are exact.

    Masks are immutable by convention, like ints: operators return new
    instances and nothing in the library mutates ``words`` in place.
    """

    __slots__ = ("n", "words")

    def __init__(self, n: int, words: np.ndarray):
        self.n = n
        self.words = words

    # -- constructors --

    @classmethod
    def zeros(cls, n: int) -> "PackedMask":
        return cls(n, np.zeros(_word_count(n), dtype=np.uint64))

    @classmethod
    def full(cls, n: int) -> "PackedMask":
        words = np.full(_word_count(n), np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
        rem = n & 63
        if rem and words.size:
            words[-1] = np.uint64((1 << rem) - 1)
        return cls(n, words)

    @classmethod
    def from_bool(cls, flags: np.ndarray) -> "PackedMask":
        """Pack a length-``n`` boolean array (index ``i`` → bit ``i``)."""
        flags = np.ascontiguousarray(flags, dtype=bool)
        n = int(flags.size)
        packed = np.packbits(flags, bitorder="little")
        want = _word_count(n) * 8
        if packed.size != want:
            packed = np.concatenate([packed, np.zeros(want - packed.size, dtype=np.uint8)])
        return cls(n, packed.view(np.uint64))

    @classmethod
    def from_indices(cls, n: int, indices) -> "PackedMask":
        flags = np.zeros(n, dtype=bool)
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size:
            flags[idx] = True
        return cls.from_bool(flags)

    # -- decoding --

    def to_bool(self) -> np.ndarray:
        """The mask as a length-``n`` boolean array (fresh, writable)."""
        if self.n == 0:
            return np.zeros(0, dtype=bool)
        return np.unpackbits(self.words.view(np.uint8), count=self.n, bitorder="little").view(
            np.bool_
        )

    def indices(self) -> np.ndarray:
        """Set-bit indices, ascending (the packed ``iter_bits``)."""
        return np.flatnonzero(self.to_bool())

    def bit_count(self) -> int:
        return popcount_words(self.words)

    # -- operators (the int-mask surface) --

    def _binary(self, other, op) -> "PackedMask":
        if not isinstance(other, PackedMask):
            return NotImplemented
        if other.n != self.n:
            raise ValueError(f"mask size mismatch: {self.n} vs {other.n}")
        return PackedMask(self.n, op(self.words, other.words))

    def __and__(self, other):
        return self._binary(other, np.bitwise_and)

    def __or__(self, other):
        return self._binary(other, np.bitwise_or)

    def __xor__(self, other):
        return self._binary(other, np.bitwise_xor)

    __rand__ = __and__
    __ror__ = __or__
    __rxor__ = __xor__

    def __invert__(self) -> "PackedMask":
        words = np.bitwise_not(self.words)
        rem = self.n & 63
        if rem and words.size:
            words[-1] &= np.uint64((1 << rem) - 1)
        return PackedMask(self.n, words)

    def __bool__(self) -> bool:
        return bool(self.words.any())

    def __eq__(self, other) -> bool:
        if not isinstance(other, PackedMask):
            return NotImplemented
        return self.n == other.n and bool(np.array_equal(self.words, other.words))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        count = self.bit_count()
        return f"PackedMask(n={self.n}, bits={count})"


# The issue's name for the shim that lets mask-only callers run on
# either backend; :class:`PackedMask` is that handle.
MaskHandle = PackedMask


# -- vectorized CSR helpers -------------------------------------------------


def _gather_rows(indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Concatenation of the CSR rows ``rows`` (duplicates allowed).

    Pure index arithmetic — ``repeat`` of row starts plus a per-segment
    ramp — so a multi-row neighborhood gather is one fancy-index, not a
    Python loop over rows.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.empty(0, dtype=np.int64)
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.repeat(indptr[rows], counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    return indices[starts + offsets]


def build_undirected_csr(n: int, us: np.ndarray, vs: np.ndarray):
    """Canonical CSR (rows sorted, deduped) from undirected edge arrays.

    ``us``/``vs`` hold one entry per undirected edge (self-loops
    allowed, listed once); the result stores both directions and a
    self-loop once per row — the exact row content the int kernel
    derives from ``nx.Graph`` adjacency.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    loop = us == vs
    rows = np.concatenate([us, vs[~loop]])
    cols = np.concatenate([vs, us[~loop]])
    if rows.size:
        order = np.lexsort((cols, rows))
        rows = rows[order]
        cols = cols[order]
        keep = np.ones(rows.size, dtype=bool)
        keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        rows = rows[keep]
        cols = cols[keep]
    indptr = np.zeros(n + 1, dtype=np.int64)
    if rows.size:
        indptr[1:] = np.cumsum(np.bincount(rows, minlength=n))
    return indptr, np.ascontiguousarray(cols)


def collect_edges(edges: Iterable, n: int | None = None, nodes: Iterable | None = None):
    """Consume an edge iterable into ``(labels, us, vs)`` kernel inputs.

    Streams the iterable once, buffering endpoints in bounded chunks.
    Returns labels in repr-sorted order (the kernel's index order) and
    endpoint arrays already mapped to kernel indices.  With ``n`` the
    vertex set is exactly ``range(n)``; ``nodes`` adds isolated
    vertices; otherwise the vertex set is the union of the endpoints.
    All-int labels take a fully vectorized mapping path (numpy unicode
    sort == repr sort for ints); any other label type falls back to a
    dict-driven mapping.
    """
    chunk_u: list = []
    chunk_v: list = []
    blocks_u: list[np.ndarray] = []
    blocks_v: list[np.ndarray] = []
    raw_u: list = []
    raw_v: list = []
    all_int = True

    def _flush():
        if chunk_u:
            blocks_u.append(np.array(chunk_u, dtype=np.int64))
            blocks_v.append(np.array(chunk_v, dtype=np.int64))
            chunk_u.clear()
            chunk_v.clear()

    for u, v in edges:
        if all_int and not (type(u) is int and type(v) is int):
            all_int = False
            raw_u = [int_val for block in blocks_u for int_val in block.tolist()]
            raw_v = [int_val for block in blocks_v for int_val in block.tolist()]
            raw_u.extend(chunk_u)
            raw_v.extend(chunk_v)
            blocks_u.clear()
            blocks_v.clear()
            chunk_u.clear()
            chunk_v.clear()
        if all_int:
            chunk_u.append(u)
            chunk_v.append(v)
            if len(chunk_u) >= (1 << 18):
                _flush()
        else:
            raw_u.append(u)
            raw_v.append(v)

    extra_nodes = list(nodes) if nodes is not None else []
    if all_int and any(type(v) is not int for v in extra_nodes):
        all_int = False
        raw_u = [int_val for block in blocks_u for int_val in block.tolist()]
        raw_v = [int_val for block in blocks_v for int_val in block.tolist()]
        raw_u.extend(chunk_u)
        raw_v.extend(chunk_v)

    if not all_int:
        vertex_set = set(raw_u)
        vertex_set.update(raw_v)
        vertex_set.update(extra_nodes)
        if n is not None:
            vertex_set.update(range(n))
        labels = sorted(vertex_set, key=repr)
        index_of = {label: i for i, label in enumerate(labels)}
        us = np.fromiter((index_of[u] for u in raw_u), dtype=np.int64, count=len(raw_u))
        vs = np.fromiter((index_of[v] for v in raw_v), dtype=np.int64, count=len(raw_v))
        return labels, us, vs

    _flush()
    ue = np.concatenate(blocks_u) if blocks_u else np.empty(0, dtype=np.int64)
    ve = np.concatenate(blocks_v) if blocks_v else np.empty(0, dtype=np.int64)
    if n is not None:
        numeric = np.arange(n, dtype=np.int64)
        if ue.size and (
            int(ue.min()) < 0 or int(ve.min()) < 0 or int(ue.max()) >= n or int(ve.max()) >= n
        ):
            raise ValueError(f"edge endpoint outside range(0, {n})")
        if extra_nodes and (min(extra_nodes) < 0 or max(extra_nodes) >= n):
            raise ValueError(f"node outside range(0, {n})")
    else:
        pool = [ue, ve]
        if extra_nodes:
            pool.append(np.array(extra_nodes, dtype=np.int64))
        numeric = np.unique(np.concatenate(pool)) if pool else np.empty(0, dtype=np.int64)
    # repr order for ints == lexicographic order of their decimal strings.
    order = np.argsort(numeric.astype("U"), kind="stable")
    rank = np.empty(numeric.size, dtype=np.int64)
    rank[order] = np.arange(numeric.size, dtype=np.int64)
    labels = numeric[order].tolist()
    if ue.size:
        us = rank[np.searchsorted(numeric, ue)]
        vs = rank[np.searchsorted(numeric, ve)]
    else:
        us, vs = ue, ve
    return labels, us, vs


# -- the packed kernel ------------------------------------------------------


class PackedGraphKernel:
    """CSR kernel with packed-mask primitives and no precomputed masks.

    Same invariants as :class:`~repro.graphs.kernel.GraphKernel` —
    labels repr-sorted, each CSR row ascending, kernel index order ==
    port order — but every vertex-set value is a :class:`PackedMask`
    and every primitive is a vectorized scan over the CSR arrays.
    Memory is O(n + m) words; there is deliberately **no**
    ``closed_bits`` table (accessing it raises with a pointer to the
    int backend).

    Build through :func:`repro.graphs.kernel.kernel_for`,
    :func:`repro.graphs.kernel.kernel_from_edges`, or a wire; direct
    construction expects already-canonical CSR parts.
    """

    backend = "packed"

    __slots__ = (
        "n",
        "labels",
        "indptr",
        "indices",
        "_labels_arr",
        "_lab_sorted",
        "_lab_sorted_idx",
        "_index_of",
        "_full",
        "_closed",
        "_back_ports",
        "_m",
        "__weakref__",
    )

    def __init__(self, labels: Sequence[Vertex], indptr, indices):
        self.n = len(labels)
        self.labels = list(labels)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        if all(type(label) is int for label in self.labels):
            self._labels_arr = np.array(self.labels, dtype=np.int64)
        else:
            self._labels_arr = None
        self._lab_sorted = None
        self._lab_sorted_idx = None
        self._index_of = None
        self._full = None
        self._closed = None
        self._back_ports = None
        self._m = None

    @classmethod
    def from_graph(cls, graph) -> "PackedGraphKernel":
        """Build from an ``nx.Graph`` (labels repr-sorted, CSR canonical)."""
        labels = sorted(graph.nodes, key=repr)
        index_of = {label: i for i, label in enumerate(labels)}
        m = graph.number_of_edges()
        us = np.empty(m, dtype=np.int64)
        vs = np.empty(m, dtype=np.int64)
        for k, (u, v) in enumerate(graph.edges):
            us[k] = index_of[u]
            vs[k] = index_of[v]
        indptr, indices = build_undirected_csr(len(labels), us, vs)
        kernel = cls(labels, indptr, indices)
        kernel._index_of = index_of
        return kernel

    @classmethod
    def from_wire_parts(cls, labels, indptr_bytes: bytes, indices_bytes: bytes):
        """Rebuild from :class:`KernelWire` CSR bytes (zero-copy views)."""
        indptr = np.frombuffer(indptr_bytes, dtype=np.int64)
        indices = np.frombuffer(indices_bytes, dtype=np.int64)
        return cls(list(labels), indptr, indices)

    def to_wire(self):
        """This kernel as a ``KernelWire`` — byte-identical to the int
        backend's wire for the same graph (same labels, same CSR)."""
        from repro.graphs.kernel import KernelWire

        return KernelWire(tuple(self.labels), self.indptr.tobytes(), self.indices.tobytes())

    # -- lazily derived structure --

    @property
    def index_of(self) -> dict:
        if self._index_of is None:
            self._index_of = {label: i for i, label in enumerate(self.labels)}
        return self._index_of

    @property
    def full_mask(self) -> PackedMask:
        if self._full is None:
            self._full = PackedMask.full(self.n)
        return self._full

    @property
    def closed_bits(self):
        raise AttributeError(
            "PackedGraphKernel has no closed_bits: per-node closed-neighborhood "
            "masks are not precomputed on the packed backend (that table is the "
            "O(n^2) memory it exists to avoid). Use closed_neighborhood_bits / "
            "union_closed_bits / span_counts, or force the int backend "
            "(REPRO_KERNEL_BACKEND=int or set_kernel_backend('int')) for "
            "pipelines that need the mask table."
        )

    def _closed_csr(self):
        """Closed-neighborhood CSR (rows = ``N[v]``, sorted, deduped).

        O(n + m) words, built once on demand — the *row* form of the
        int backend's ``closed_bits`` table, without the n²-bit cost.
        """
        if self._closed is None:
            n = self.n
            arange = np.arange(n, dtype=np.int64)
            rows = np.concatenate([np.repeat(arange, np.diff(self.indptr)), arange])
            cols = np.concatenate([self.indices, arange])
            if rows.size:
                order = np.lexsort((cols, rows))
                rows = rows[order]
                cols = cols[order]
                keep = np.ones(rows.size, dtype=bool)
                keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
                rows = rows[keep]
                cols = cols[keep]
            cind = np.zeros(n + 1, dtype=np.int64)
            if rows.size:
                cind[1:] = np.cumsum(np.bincount(rows, minlength=n))
            self._closed = (cind, np.ascontiguousarray(cols))
        return self._closed

    def edge_count(self) -> int:
        """Number of undirected edges (self-loops counted once)."""
        if self._m is None:
            rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
            loops = int((self.indices == rows).sum())
            self._m = (int(self.indices.size) - loops) // 2 + loops
        return self._m

    # -- label <-> index <-> mask conversions --

    def index(self, label: Vertex) -> int:
        return self.index_of[label]

    def label(self, index: int) -> Vertex:
        return self.labels[index]

    def _indices_of_labels(self, vertices) -> np.ndarray:
        verts = vertices if isinstance(vertices, (list, tuple)) else list(vertices)
        if (
            self._labels_arr is not None
            and verts
            and all(type(v) is int for v in verts)
        ):
            if self._lab_sorted is None:
                self._lab_sorted_idx = np.argsort(self._labels_arr, kind="stable")
                self._lab_sorted = self._labels_arr[self._lab_sorted_idx]
            arr = np.array(verts, dtype=np.int64)
            pos = np.searchsorted(self._lab_sorted, arr)
            pos_clipped = np.minimum(pos, self.n - 1)
            ok = (pos < self.n) & (self._lab_sorted[pos_clipped] == arr)
            if not ok.all():
                raise KeyError(verts[int(np.flatnonzero(~ok)[0])])
            return self._lab_sorted_idx[pos_clipped]
        index_of = self.index_of
        return np.fromiter((index_of[v] for v in verts), dtype=np.int64, count=len(verts))

    def bits_of(self, vertices: Iterable[Vertex]) -> PackedMask:
        """Packed mask of an iterable of vertex labels."""
        return PackedMask.from_indices(self.n, self._indices_of_labels(vertices))

    def labels_of(self, mask: PackedMask) -> set:
        """Vertex labels of the set bits of ``mask``."""
        idx = mask.indices()
        if self._labels_arr is not None:
            return set(self._labels_arr[idx].tolist())
        labels = self.labels
        return {labels[i] for i in idx.tolist()}

    def neighbor_row(self, index: int) -> np.ndarray:
        """CSR row of ``index``: neighbor indices, sorted ascending."""
        return self.indices[self.indptr[index] : self.indptr[index + 1]]

    def degree(self, index: int) -> int:
        return int(self.indptr[index + 1] - self.indptr[index])

    # -- domination primitives --

    def closed_neighborhood_bits(self, mask: PackedMask) -> PackedMask:
        """``N[S]`` as a packed mask, one multi-row gather + scatter."""
        src = mask.indices()
        flags = np.zeros(self.n, dtype=bool)
        if src.size:
            flags[_gather_rows(self.indptr, self.indices, src)] = True
            flags[src] = True
        return PackedMask.from_bool(flags)

    def union_closed_bits(self, vertices: Iterable[Vertex]) -> PackedMask:
        """``N[S]`` straight from vertex labels (the checker entry)."""
        src = self._indices_of_labels(vertices)
        flags = np.zeros(self.n, dtype=bool)
        if src.size:
            flags[_gather_rows(self.indptr, self.indices, src)] = True
            flags[src] = True
        return PackedMask.from_bool(flags)

    def dominates(self, mask: PackedMask) -> bool:
        return self.closed_neighborhood_bits(mask).bit_count() == self.n

    def dominates_vertices(self, vertices: Iterable[Vertex]) -> bool:
        return self.union_closed_bits(vertices).bit_count() == self.n

    def undominated(self, mask: PackedMask) -> PackedMask:
        return self.full_mask & ~self.closed_neighborhood_bits(mask)

    def span_counts(self, undominated_mask: PackedMask) -> np.ndarray:
        """Residual spans ``|N[v] ∩ U|`` for every vertex (int64 array).

        One prefix sum over the closed CSR — no per-vertex popcounts.
        """
        cind, ccols = self._closed_csr()
        hits = undominated_mask.to_bool()[ccols]
        pref = np.zeros(ccols.size + 1, dtype=np.int64)
        if ccols.size:
            pref[1:] = np.cumsum(hits)
        return pref[cind[1:]] - pref[cind[:-1]]

    # -- balls (vectorized frontier BFS) --

    def _ball_flags(self, seeds: np.ndarray, radius: int) -> np.ndarray:
        flags = np.zeros(self.n, dtype=bool)
        flags[seeds] = True
        frontier = np.unique(seeds)
        for _ in range(radius):
            if frontier.size == 0:
                break
            nbrs = _gather_rows(self.indptr, self.indices, frontier)
            fresh = nbrs[~flags[nbrs]]
            if fresh.size == 0:
                break
            flags[fresh] = True
            frontier = np.unique(fresh)
        return flags

    def ball_bits(self, center: Vertex, radius: int) -> PackedMask:
        """``N^r[center]`` as a packed mask."""
        if radius < 0:
            return PackedMask.zeros(self.n)
        i = self.index_of[center]
        if radius == 0:
            return PackedMask.from_indices(self.n, [i])
        return PackedMask.from_bool(self._ball_flags(np.array([i], dtype=np.int64), radius))

    def ball_bits_from_mask(self, mask: PackedMask, radius: int) -> PackedMask:
        """``N^r[S]`` as a packed mask for ``S`` given as a mask."""
        if radius <= 0 or not mask:
            return PackedMask.zeros(self.n) if radius < 0 else mask
        return PackedMask.from_bool(self._ball_flags(mask.indices(), radius))

    def ball_labels(self, center: Vertex, radius: int) -> set:
        if radius < 0:
            return set()
        return self.labels_of(self.ball_bits(center, radius))

    def ball_labels_of_set(self, vertices: Iterable[Vertex], radius: int) -> set:
        start = self._indices_of_labels(vertices)
        if radius < 0:
            return set()
        if radius == 0:
            return self.labels_of(PackedMask.from_indices(self.n, start))
        return self.labels_of(PackedMask.from_bool(self._ball_flags(start, radius)))

    # -- masked connectivity (flood fills) --

    def _flood(self, seed_flags: np.ndarray, within: np.ndarray) -> np.ndarray:
        component = seed_flags & within
        frontier = np.flatnonzero(component)
        while frontier.size:
            nbrs = _gather_rows(self.indptr, self.indices, frontier)
            inside = nbrs[within[nbrs]]
            fresh = inside[~component[inside]]
            if fresh.size == 0:
                break
            component[fresh] = True
            frontier = np.unique(fresh)
        return component

    def component_bits(self, seed: PackedMask, within: PackedMask) -> PackedMask:
        """Connected component of ``G[within]`` containing ``seed``."""
        return PackedMask.from_bool(self._flood(seed.to_bool(), within.to_bool()))

    def components_of_mask(self, mask: PackedMask) -> Iterator[PackedMask]:
        """Connected components of ``G[mask]``, lowest kernel index first."""
        within = mask.to_bool()
        seeds = np.flatnonzero(within)
        remaining = within.copy()
        for s in seeds.tolist():
            if not remaining[s]:
                continue
            seed_flags = np.zeros(self.n, dtype=bool)
            seed_flags[s] = True
            component = self._flood(seed_flags, remaining)
            remaining &= ~component
            yield PackedMask.from_bool(component)

    def count_components_of_mask(self, mask: PackedMask) -> int:
        return sum(1 for _ in self.components_of_mask(mask))

    def is_mask_connected(self, mask: PackedMask) -> bool:
        if not mask:
            return True
        first = next(self.components_of_mask(mask))
        return first.bit_count() == mask.bit_count()

    # -- engine routing --

    def back_ports(self) -> np.ndarray:
        """Per-edge-slot back ports aligned with ``indices`` (int64).

        Sorting all directed slots by ``(col, row)`` enumerates, for
        each CSR slot ``s = (u, v)`` in order, exactly the reverse slot
        ``(v, u)`` — one lexsort replaces the int backend's per-slot
        binary search.
        """
        if self._back_ports is None:
            rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
            reverse_slot = np.lexsort((rows, self.indices))
            self._back_ports = reverse_slot - self.indptr[self.indices]
        return self._back_ports

    # -- structural surgery --

    def induced(self, keep: np.ndarray) -> "PackedGraphKernel":
        """Sub-kernel induced on the ascending kernel indices ``keep``.

        Labels are inherited (so repr order is preserved) and rows stay
        sorted because the index relabelling is monotone.
        """
        keep = np.asarray(keep, dtype=np.int64)
        inside = np.zeros(self.n, dtype=bool)
        inside[keep] = True
        new_id = np.full(self.n, -1, dtype=np.int64)
        new_id[keep] = np.arange(keep.size, dtype=np.int64)
        deg = np.diff(self.indptr)
        neighborhood = _gather_rows(self.indptr, self.indices, keep)
        new_rows_all = np.repeat(np.arange(keep.size, dtype=np.int64), deg[keep])
        sel = inside[neighborhood]
        new_rows = new_rows_all[sel]
        new_cols = new_id[neighborhood[sel]]
        indptr = np.zeros(keep.size + 1, dtype=np.int64)
        if new_rows.size:
            indptr[1:] = np.cumsum(np.bincount(new_rows, minlength=keep.size))
        labels = [self.labels[int(k)] for k in keep]
        return PackedGraphKernel(labels, indptr, np.ascontiguousarray(new_cols))


# -- packed pipeline cores --------------------------------------------------


def greedy_cover_packed(
    kernel: PackedGraphKernel, target_mask: PackedMask, candidate_mask: PackedMask
) -> PackedMask:
    """Packed twin of ``greedy_cover_mask`` — identical output.

    Lazy-greedy with a max-heap of stale gains: gains only decrease as
    targets get covered (submodularity), so a popped entry whose
    recomputed gain still matches its key is a true maximum.  Heap
    order is ``(-gain, index)``, which reproduces the int backend's
    "strictly greater beats, lowest index wins ties" selection exactly.
    """
    n = kernel.n
    remaining = target_mask.to_bool()
    remaining_count = int(remaining.sum())
    chosen = np.zeros(n, dtype=bool)
    if remaining_count == 0:
        return PackedMask.from_bool(chosen)
    cind, ccols = kernel._closed_csr()
    candidates = candidate_mask.indices()
    pref = np.zeros(ccols.size + 1, dtype=np.int64)
    if ccols.size:
        pref[1:] = np.cumsum(remaining[ccols])
    gains = pref[cind[candidates + 1]] - pref[cind[candidates]]
    heap = [
        (-int(g), int(c)) for g, c in zip(gains.tolist(), candidates.tolist()) if g > 0
    ]
    heapq.heapify(heap)
    while remaining_count:
        if not heap:
            raise ValueError("some target cannot be dominated by any candidate")
        neg_gain, c = heapq.heappop(heap)
        row = ccols[cind[c] : cind[c + 1]]
        hits = remaining[row]
        gain = int(hits.sum())
        if gain == -neg_gain:
            chosen[c] = True
            remaining[row[hits]] = False
            remaining_count -= gain
        elif gain > 0:
            heapq.heappush(heap, (-gain, c))
    return PackedMask.from_bool(chosen)


def two_packing_packed(kernel: PackedGraphKernel) -> int:
    """Packed twin of ``two_packing_lower_bound`` — identical count.

    Same deterministic greedy: visit vertices by ascending ``(degree,
    index)``, pick if unblocked, block the radius-2 ball — with the
    blocked set as a boolean array and each ball two CSR gathers.
    """
    n = kernel.n
    indptr, indices = kernel.indptr, kernel.indices
    deg = np.diff(indptr)
    order = np.lexsort((np.arange(n, dtype=np.int64), deg))
    blocked = np.zeros(n, dtype=bool)
    count = 0
    for i in order.tolist():
        if blocked[i]:
            continue
        count += 1
        blocked[i] = True
        ring1 = indices[indptr[i] : indptr[i + 1]]
        blocked[ring1] = True
        ring2 = _gather_rows(indptr, indices, ring1)
        blocked[ring2] = True
    return count


def d2_members_packed(kernel: PackedGraphKernel) -> PackedMask:
    """``D₂(G)`` membership as a packed mask — identical to the int path.

    ``v ∉ D₂`` iff some neighbor ``u`` has ``N[v] ⊆ N[u]``.  Candidate
    pairs are pre-filtered by closed degree, then all subset tests run
    as one batched ``searchsorted`` against the globally (row, col)-
    sorted closed CSR keys, reduced per pair with
    ``np.logical_and.reduceat`` — processed in bounded element chunks.
    """
    n = kernel.n
    if n == 0:
        return PackedMask.zeros(0)
    cind, ccols = kernel._closed_csr()
    cdeg = np.diff(cind)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(kernel.indptr))
    cols = kernel.indices
    pair_ok = cdeg[cols] >= cdeg[rows]
    pv = rows[pair_ok]
    pu = cols[pair_ok]
    dominated = np.zeros(n, dtype=bool)
    if pv.size:
        closed_keys = np.repeat(np.arange(n, dtype=np.int64), cdeg) * n + ccols
        counts = cdeg[pv]
        bounds = np.concatenate(([0], np.cumsum(counts)))
        start = 0
        while start < pv.size:
            stop = int(
                np.searchsorted(bounds, bounds[start] + _CHUNK_ELEMENTS, side="left")
            )
            stop = max(stop, start + 1)
            stop = min(stop, pv.size)
            vv = pv[start:stop]
            uu = pu[start:stop]
            cnt = counts[start:stop]
            witnesses = _gather_rows(cind, ccols, vv)
            owners = np.repeat(uu, cnt)
            queries = owners * n + witnesses
            pos = np.searchsorted(closed_keys, queries)
            pos_clipped = np.minimum(pos, closed_keys.size - 1)
            found = (pos < closed_keys.size) & (closed_keys[pos_clipped] == queries)
            ok = found | (witnesses == owners)
            starts = np.concatenate(([0], np.cumsum(cnt)))[:-1]
            subset = np.logical_and.reduceat(ok, starts)
            dominated[vv[subset]] = True
            start = stop
    return PackedMask.from_bool(~dominated)


def gamma_packed(kernel: PackedGraphKernel, index: int) -> int:
    """Packed twin of ``d2.gamma`` for one kernel index (capped at 2)."""
    cind, ccols = kernel._closed_csr()
    closed_row = ccols[cind[index] : cind[index + 1]]
    for j in kernel.neighbor_row(index).tolist():
        other = ccols[cind[j] : cind[j + 1]]
        hit = np.searchsorted(other, closed_row)
        hit_clipped = np.minimum(hit, other.size - 1) if other.size else hit
        if other.size and bool(
            ((hit < other.size) & (other[hit_clipped] == closed_row)).all()
        ):
            return 1
    return 2


def twin_survivor_indices(kernel: PackedGraphKernel) -> tuple[np.ndarray, np.ndarray]:
    """Iterated true-twin removal: ``(survivors, representative)``.

    Mirrors ``remove_true_twins``: per round, survivors are grouped by
    their closed neighborhood *within the current survivor set* and
    only the lowest-index member of each class survives; rounds repeat
    until a fixpoint.  The grouping is two prefix sums (masked closed
    degree + masked neighbor-index sum) to shortlist candidate classes,
    then exact byte-key bucketing on the shortlisted vertices only.

    ``survivors`` is the ascending kernel indices of the fixpoint;
    ``representative[i]`` is the surviving kernel index that represents
    ``i`` (path-compressed through removal chains, itself for
    survivors).
    """
    n = kernel.n
    cind, ccols = kernel._closed_csr()
    survivors = np.ones(n, dtype=bool)
    representative = np.arange(n, dtype=np.int64)
    while True:
        alive = np.flatnonzero(survivors)
        inside = survivors[ccols]
        pref_cnt = np.zeros(ccols.size + 1, dtype=np.int64)
        pref_sum = np.zeros(ccols.size + 1, dtype=np.int64)
        if ccols.size:
            pref_cnt[1:] = np.cumsum(inside)
            pref_sum[1:] = np.cumsum(np.where(inside, ccols, 0))
        cnt = (pref_cnt[cind[1:]] - pref_cnt[cind[:-1]])[alive]
        total = (pref_sum[cind[1:]] - pref_sum[cind[:-1]])[alive]
        # Vertices alone in their (count, index-sum) signature cannot
        # have a twin; only collided signatures need exact keys.
        sig_order = np.lexsort((total, cnt))
        sc = cnt[sig_order]
        st = total[sig_order]
        same_prev = np.zeros(sig_order.size, dtype=bool)
        same_prev[1:] = (sc[1:] == sc[:-1]) & (st[1:] == st[:-1])
        collided = same_prev.copy()
        collided[:-1] |= same_prev[1:]
        candidates = np.sort(alive[sig_order[collided]])
        removed: list[int] = []
        buckets: dict[bytes, int] = {}
        for i in candidates.tolist():
            row = ccols[cind[i] : cind[i + 1]]
            key = row[survivors[row]].tobytes()
            rep = buckets.get(key)
            if rep is None:
                buckets[key] = i
            else:
                removed.append(i)
                representative[i] = rep
        if not removed:
            break
        survivors[np.array(removed, dtype=np.int64)] = False
    # Path-compress removal chains by pointer doubling.
    while True:
        doubled = representative[representative]
        if np.array_equal(doubled, representative):
            return np.flatnonzero(survivors), representative
        representative = doubled
