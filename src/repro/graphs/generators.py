"""Deterministic generators for the graph families used in the paper.

Every family in Table 1 and in the proofs/examples of the paper has a
generator here:

* trees, paths, cycles, stars, spiders, caterpillars (Table 1 row 1);
* fans and maximal outerplanar graphs (Table 1 row 2; Section 5.4);
* theta graphs and books (the canonical ``K_{2,t}``-minor witnesses);
* the clique-with-pendants example of Section 4 (unbounded 2-cut count
  with ``MDS = 1``);
* long cycles (every vertex is a local 1-cut, none is a global one);
* wheels, grids, complete and complete-bipartite graphs as *positive*
  minor controls.

All generators label vertices ``0..n−1`` and are deterministic.
"""

from __future__ import annotations

import networkx as nx


def path(n: int) -> nx.Graph:
    """Path on ``n`` vertices; ``K_{2,t}``-minor-free for every ``t ≥ 1``."""
    if n < 1:
        raise ValueError("need at least one vertex")
    return nx.path_graph(n)


def cycle(n: int) -> nx.Graph:
    """Cycle on ``n ≥ 3`` vertices; ``K_{2,3}``-minor-free.

    In a long cycle every vertex is an r-local 1-cut (for ``2r + 1 < n``)
    while no vertex is a global cut vertex — the paper's motivating
    example for why local cuts outnumber global ones.
    """
    if n < 3:
        raise ValueError("cycle needs at least 3 vertices")
    return nx.cycle_graph(n)


def star(n: int) -> nx.Graph:
    """Star ``K_{1,n−1}``: one hub, ``n − 1`` leaves."""
    if n < 1:
        raise ValueError("need at least one vertex")
    return nx.star_graph(n - 1)


def spider(legs: int, leg_length: int) -> nx.Graph:
    """Spider: ``legs`` paths of ``leg_length`` edges glued at a center."""
    if legs < 1 or leg_length < 1:
        raise ValueError("spider needs positive legs and leg_length")
    graph = nx.Graph()
    graph.add_node(0)
    next_label = 1
    for _ in range(legs):
        previous = 0
        for _ in range(leg_length):
            graph.add_edge(previous, next_label)
            previous = next_label
            next_label += 1
    return graph


def caterpillar(spine: int, legs_per_vertex: int) -> nx.Graph:
    """Caterpillar: a spine path with pendant leaves on every spine vertex."""
    if spine < 1 or legs_per_vertex < 0:
        raise ValueError("spine must be positive, legs_per_vertex non-negative")
    graph = nx.path_graph(spine)
    next_label = spine
    for v in range(spine):
        for _ in range(legs_per_vertex):
            graph.add_edge(v, next_label)
            next_label += 1
    return graph


def complete_binary_tree(depth: int) -> nx.Graph:
    """Complete binary tree of the given depth (depth 0 = single vertex)."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    if depth == 0:
        graph = nx.Graph()
        graph.add_node(0)
        return graph
    return nx.balanced_tree(2, depth)


def fan(n: int) -> nx.Graph:
    """Fan ``F_n``: path ``1..n`` plus an apex ``0`` adjacent to all of it.

    Fans are maximal outerplanar, hence ``K_{2,3}``-minor-free; they are
    one of the two building blocks of Ding's structure theorem
    (Section 5.4).
    """
    if n < 1:
        raise ValueError("fan needs at least one path vertex")
    graph = nx.path_graph(range(1, n + 1))
    graph.add_node(0)
    for v in range(1, n + 1):
        graph.add_edge(0, v)
    return graph


def wheel(n: int) -> nx.Graph:
    """Wheel ``W_n``: cycle of length ``n`` plus a hub.

    Wheels *do* contain large ``K_{2,t}`` minors (hub + one rim vertex as
    hubs), making them a positive control for the minor detector.
    """
    if n < 3:
        raise ValueError("wheel rim needs at least 3 vertices")
    return nx.wheel_graph(n + 1)


def theta(path_count: int, path_length: int) -> nx.Graph:
    """Theta graph: two terminals joined by ``path_count`` disjoint paths.

    ``theta(t, ℓ)`` contains ``K_{2,t}`` as a minor (contract each path),
    and nothing larger — the minimal witness family.
    """
    if path_count < 2 or path_length < 1:
        raise ValueError("need at least 2 paths of length >= 1")
    if path_count > 1 and path_length == 1:
        # parallel edges collapse in a simple graph
        raise ValueError("path_length must be >= 2 for parallel paths")
    graph = nx.Graph()
    a, b = 0, 1
    next_label = 2
    for _ in range(path_count):
        previous = a
        for _ in range(path_length - 1):
            graph.add_edge(previous, next_label)
            previous = next_label
            next_label += 1
        graph.add_edge(previous, b)
    return graph


def book(pages: int) -> nx.Graph:
    """Book ``B_pages``: an edge ``{0, 1}`` plus ``pages`` common neighbors.

    ``book(t)`` contains ``K_{2,t}`` as a subgraph — the smallest
    subgraph-witness.
    """
    if pages < 1:
        raise ValueError("book needs at least one page")
    graph = nx.Graph()
    graph.add_edge(0, 1)
    for i in range(pages):
        graph.add_edge(0, 2 + i)
        graph.add_edge(1, 2 + i)
    return graph


def clique_with_pendants(n: int) -> nx.Graph:
    """The Section 4 example: clique ``K_n`` plus a pendant ``x_{uv}`` per pair.

    Vertex ``0`` dominates everything (``MDS = 1``) yet every clique
    vertex lies in a minimal 2-cut ``{0, v}`` separating the pendant
    ``x_{0v}`` — the paper's witness that *all* 2-cut vertices cannot be
    taken, motivating interesting vertices.  Pendants are attached to
    pairs ``{0, v}`` exactly as in the paper.
    """
    if n < 2:
        raise ValueError("clique needs at least 2 vertices")
    graph = nx.complete_graph(n)
    next_label = n
    for v in range(1, n):
        graph.add_edge(0, next_label)
        graph.add_edge(v, next_label)
        next_label += 1
    return graph


def maximal_outerplanar(n: int) -> nx.Graph:
    """Maximal outerplanar graph: polygon ``0..n−1`` triangulated as a fan.

    Outerplanar graphs are exactly the ``{K_4, K_{2,3}}``-minor-free
    graphs (Table 1 row 2).
    """
    if n < 3:
        raise ValueError("needs at least 3 vertices")
    graph = nx.cycle_graph(n)
    for v in range(2, n - 1):
        graph.add_edge(0, v)
    return graph


def cactus_chain(cycles: int, cycle_length: int) -> nx.Graph:
    """Chain of ``cycles`` cycles of length ``cycle_length`` sharing cut vertices.

    Cacti contain no theta subdivision, hence are ``K_{2,3}``-minor-free;
    they are maximally rich in 1-cuts, stressing Lemma 3.2.
    """
    if cycles < 1 or cycle_length < 3:
        raise ValueError("need at least one cycle of length >= 3")
    graph = nx.Graph()
    anchor = 0
    graph.add_node(anchor)
    next_label = 1
    for _ in range(cycles):
        previous = anchor
        first_new = next_label
        for _ in range(cycle_length - 1):
            graph.add_edge(previous, next_label)
            previous = next_label
            next_label += 1
        graph.add_edge(previous, anchor)
        anchor = first_new + (cycle_length - 1) // 2
    return graph


def grid(rows: int, cols: int) -> nx.Graph:
    """Grid graph (planar, contains large ``K_{2,t}`` minors when wide)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")
    graph = nx.grid_2d_graph(rows, cols)
    mapping = {(i, j): i * cols + j for i in range(rows) for j in range(cols)}
    return nx.relabel_nodes(graph, mapping)


def complete(n: int) -> nx.Graph:
    """Complete graph ``K_n``; ``K_{2,t}``-minor-free iff ``n ≤ t + 1``."""
    if n < 1:
        raise ValueError("need at least one vertex")
    return nx.complete_graph(n)


def complete_bipartite(s: int, t: int) -> nx.Graph:
    """``K_{s,t}`` itself (the excluded pattern for ``s = 2``)."""
    if s < 1 or t < 1:
        raise ValueError("parts must be non-empty")
    return nx.complete_bipartite_graph(s, t)


def ladder(n: int) -> nx.Graph:
    """Ladder ``P_2 × P_n``: rails ``u_i = 2i`` and ``v_i = 2i + 1``.

    Ladders are the simplest of Ding's *strips* (Section 5.4): every rung
    ``{u_i, v_i}`` away from the ends is a minimal 2-cut whose two sides
    both contain vertices non-adjacent to either cut vertex, so rung
    vertices are interesting — the ideal stress test for Lemma 3.3.
    """
    if n < 1:
        raise ValueError("ladder needs at least one rung")
    graph = nx.Graph()
    for i in range(n):
        graph.add_edge(2 * i, 2 * i + 1)
        if i + 1 < n:
            graph.add_edge(2 * i, 2 * (i + 1))
            graph.add_edge(2 * i + 1, 2 * (i + 1) + 1)
    return graph


def fan_chain(blocks: int, fan_size: int) -> nx.Graph:
    """Chain of fans glued at single shared vertices (many 1-cuts).

    Each glue vertex is a cut vertex; the blocks between them are
    2-connected fans, so the block-cut machinery and the brute-force
    step of Algorithm 1 are both exercised.
    """
    if blocks < 1 or fan_size < 2:
        raise ValueError("need at least one block and fan_size >= 2")
    graph = nx.Graph()
    next_label = 0
    anchor: int | None = None
    for _ in range(blocks):
        apex = anchor if anchor is not None else next_label
        if anchor is None:
            next_label += 1
        previous = None
        for _ in range(fan_size):
            v = next_label
            next_label += 1
            graph.add_edge(apex, v)
            if previous is not None:
                graph.add_edge(previous, v)
            previous = v
        anchor = previous
    return graph


def long_cycle_with_chords(n: int, chord_gap: int) -> nx.Graph:
    """Cycle ``C_n`` plus short chords ``{i, i + chord_gap}`` every ``chord_gap``.

    A type-I-like graph (Section 5.4): chords are non-crossing and short,
    keeping the graph ``K_{2,4}``-minor-free while killing many local
    1-cuts.
    """
    if n < 3 or chord_gap < 2 or chord_gap >= n:
        raise ValueError("need n >= 3 and 2 <= chord_gap < n")
    graph = nx.cycle_graph(n)
    for i in range(0, n - chord_gap, chord_gap):
        graph.add_edge(i, i + chord_gap)
    return graph
