"""Minor detection, specialised for ``K_{2,t}`` (the paper's excluded minor).

``G`` contains ``K_{2,t}`` as a minor exactly when there are two disjoint
connected *hub* sets ``A, B ⊆ V(G)`` and ``t`` further pairwise-disjoint
connected sets, each adjacent to both hubs.  For **fixed** hubs the
maximum number of such connector sets equals, by Menger's theorem, the
maximum number of vertex-disjoint paths in ``G − (A ∪ B)`` from the
``A``-boundary to the ``B``-boundary — a max-flow computation.  We get:

* :func:`max_connectors` — exact for given hubs (flow with unit vertex
  capacities);
* :func:`largest_k2t_minor_singleton_hubs` — exact over singleton hubs,
  a fast and frequently tight lower bound on the largest ``t``;
* :func:`largest_k2t_minor` / :func:`has_k2t_minor` — exact search over
  connected hub sets (exponential; guarded by a size limit, meant for the
  test-scale graphs where ground truth matters);
* :func:`has_minor` — generic backtracking minor test for tiny graphs,
  used to cross-check the specialised routine;
* :func:`edge_density_certificate` — the extremal bound
  ``|E| ≤ (t+1)(n−1)/2`` for ``K_{2,t}``-minor-free graphs (Chudnovsky,
  Reed, Seymour), usable as a fast *has-minor* certificate.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterable

import networkx as nx

Vertex = Hashable


def max_connectors(graph: nx.Graph, hub_a: Iterable[Vertex], hub_b: Iterable[Vertex]) -> int:
    """Max number of disjoint connected sets adjacent to both hubs.

    Exact for the given hubs: builds the node-split flow network over
    ``G − (A ∪ B)`` and returns the max-flow value (= max vertex-disjoint
    boundary-to-boundary paths by Menger).  A single vertex adjacent to
    both hubs counts as one connector.
    """
    a_set, b_set = set(hub_a), set(hub_b)
    if a_set & b_set:
        raise ValueError("hub sets must be disjoint")
    rest = set(graph.nodes) - a_set - b_set
    sources = {v for v in rest if any(w in a_set for w in graph.neighbors(v))}
    sinks = {v for v in rest if any(w in b_set for w in graph.neighbors(v))}
    if not sources or not sinks:
        return 0

    flow_net = nx.DiGraph()
    source, sink = ("S",), ("T",)
    for v in rest:
        flow_net.add_edge(("in", v), ("out", v), capacity=1)
    for u, v in graph.subgraph(rest).edges:
        flow_net.add_edge(("out", u), ("in", v), capacity=1)
        flow_net.add_edge(("out", v), ("in", u), capacity=1)
    for v in sources:
        flow_net.add_edge(source, ("in", v), capacity=1)
    for v in sinks:
        flow_net.add_edge(("out", v), sink, capacity=1)
    value, _ = nx.maximum_flow(flow_net, source, sink)
    return int(value)


def largest_k2t_minor_singleton_hubs(graph: nx.Graph) -> int:
    """Largest ``t`` with a ``K_{2,t}`` minor whose hubs are single vertices.

    This is a lower bound on the true largest ``t`` and is exact on many
    structured families (wheels, thetas, books); it runs one max-flow per
    vertex pair.
    """
    best = 0
    nodes = sorted(graph.nodes, key=repr)
    for a, b in combinations(nodes, 2):
        best = max(best, max_connectors(graph, {a}, {b}))
    return best


def _connected_sets(graph: nx.Graph, max_size: int) -> list[frozenset[Vertex]]:
    """Enumerate all connected vertex sets of size up to ``max_size``.

    Standard canonical expansion: grow each set only through vertices
    larger (in sorted order) than its minimum to avoid duplicates, then
    deduplicate the remainder with a seen-set.
    """
    order = {v: i for i, v in enumerate(sorted(graph.nodes, key=repr))}
    results: set[frozenset[Vertex]] = set()
    stack: list[frozenset[Vertex]] = [frozenset({v}) for v in graph.nodes]
    while stack:
        current = stack.pop()
        if current in results:
            continue
        results.add(current)
        if len(current) == max_size:
            continue
        root_rank = min(order[v] for v in current)
        boundary = set()
        for v in current:
            boundary.update(graph.neighbors(v))
        for w in boundary - set(current):
            if order[w] > root_rank:
                extended = current | {w}
                if extended not in results:
                    stack.append(extended)
    return sorted(results, key=lambda s: (len(s), repr(sorted(s, key=repr))))


def largest_k2t_minor(
    graph: nx.Graph, *, max_hub_size: int | None = None, node_limit: int = 16
) -> int:
    """Largest ``t`` such that ``graph`` has a ``K_{2,t}`` minor (exact).

    Enumerates all pairs of disjoint connected hub sets up to
    ``max_hub_size`` (default: allow full range ``n − 2``) and maximises
    the connector flow.  Exponential — refuses graphs with more than
    ``node_limit`` vertices so the exact routine is only used at test
    scale; use :func:`largest_k2t_minor_singleton_hubs` beyond that.
    """
    n = graph.number_of_nodes()
    if n > node_limit:
        raise ValueError(
            f"exact K_2,t search limited to {node_limit} vertices (got {n}); "
            "use largest_k2t_minor_singleton_hubs for larger graphs"
        )
    if n < 3:
        return 0
    cap = max_hub_size if max_hub_size is not None else max(1, n - 2)
    hubs = _connected_sets(graph, cap)
    best = 0
    for i, hub_a in enumerate(hubs):
        for hub_b in hubs[i + 1 :]:
            if hub_a & hub_b:
                continue
            if len(hub_a) + len(hub_b) + best >= n:
                # Not enough vertices left to beat the current best.
                continue
            best = max(best, max_connectors(graph, hub_a, hub_b))
    return best


def has_k2t_minor(graph: nx.Graph, t: int, *, exact: bool = True, node_limit: int = 16) -> bool:
    """Return whether ``graph`` contains ``K_{2,t}`` as a minor.

    ``t ≤ 0`` is trivially present.  With ``exact=False`` only the
    singleton-hub lower bound and the density certificate are used, which
    can report false negatives but never false positives.
    """
    if t <= 0:
        return True
    if graph.number_of_nodes() < t + 2:
        return False
    if edge_density_certificate(graph, t):
        return True
    if largest_k2t_minor_singleton_hubs(graph) >= t:
        return True
    if not exact:
        return False
    return largest_k2t_minor(graph, node_limit=node_limit) >= t


def is_k2t_minor_free(graph: nx.Graph, t: int, **kwargs) -> bool:
    """Negation of :func:`has_k2t_minor` (same keyword arguments)."""
    return not has_k2t_minor(graph, t, **kwargs)


def edge_density_certificate(graph: nx.Graph, t: int) -> bool:
    """Return True when the edge count *forces* a ``K_{2,t}`` minor.

    ``K_{2,t}``-minor-free graphs satisfy ``|E| ≤ (t+1)(n−1)/2`` for
    ``t ≥ 2``; exceeding the bound certifies the minor's presence.
    """
    if t < 2:
        return False
    n, m = graph.number_of_nodes(), graph.number_of_edges()
    return n >= 2 and m > (t + 1) * (n - 1) / 2


def has_minor(graph: nx.Graph, pattern: nx.Graph, *, node_limit: int = 12) -> bool:
    """Generic (exponential) minor test by branch-set growth.

    Places one connected branch set per pattern vertex, in an order where
    every pattern vertex (after the first) is adjacent to an earlier one,
    pruning candidates that are not disjoint from, or not correctly
    adjacent to, the already-placed sets.  Only meant for cross-checking
    the specialised ``K_{2,t}`` routine on tiny graphs.
    """
    n = graph.number_of_nodes()
    if n > node_limit:
        raise ValueError(f"generic minor test limited to {node_limit} vertices (got {n})")
    p = pattern.number_of_nodes()
    if p == 0:
        return True
    if p > n or pattern.number_of_edges() > graph.number_of_edges():
        return False

    # Order pattern vertices so each is adjacent to an earlier one when
    # possible (pattern components are handled back to back).
    p_order: list[Vertex] = []
    for comp in nx.connected_components(pattern):
        start = min(comp, key=repr)
        p_order.extend(nx.bfs_tree(pattern.subgraph(comp), start).nodes)

    max_branch = n - p + 1
    candidates = _connected_sets(graph, max_branch)
    placed: list[frozenset[Vertex]] = []

    def adjacent_sets(a: frozenset[Vertex], b: frozenset[Vertex]) -> bool:
        return any(graph.has_edge(u, v) for u in a for v in b)

    def search(idx: int, used: set[Vertex]) -> bool:
        if idx == len(p_order):
            return True
        p_vertex = p_order[idx]
        needed = [
            i for i, earlier in enumerate(p_order[:idx])
            if pattern.has_edge(p_vertex, earlier)
        ]
        for candidate in candidates:
            if candidate & used:
                continue
            if any(not adjacent_sets(candidate, placed[i]) for i in needed):
                continue
            placed.append(candidate)
            if search(idx + 1, used | candidate):
                return True
            placed.pop()
        return False

    return search(0, set())
