"""Structure recovery: find the Ding building blocks inside a graph.

Ding's theorem (Proposition 5.15) says 3-connected ``K_{2,t}``-minor-free
graphs are augmentations of a bounded core by fans and strips.  The
*proof* of Lemma 4.2 uses the contrapositive geometry: a long strip
forces local 2-cuts at its rungs, a long fan is dominated by its
center.  This module recovers those shapes from a concrete graph:

* :func:`find_attached_fans` — maximal fan patterns: an apex whose
  neighborhood contains an induced path triangulated against it;
* :func:`find_strip_segments` — ladder-like runs: chains of minimal
  2-cut "rungs" whose removal order is linear (pairwise non-crossing,
  nested along the graph);
* :func:`outerplanarity` helpers — recognition via the classical
  apex-planarity characterisation (G is outerplanar iff G plus a
  universal vertex is planar), used by generator validation;
* :func:`long_strip_forces_local_cuts` — the executable form of the
  Lemma 4.2 argument: every strip segment of length ≥ 3r contains an
  r-local minimal 2-cut.
"""

from __future__ import annotations

import weakref
from itertools import chain
from typing import Hashable

import networkx as nx

from repro.graphs.cuts import crossing_two_cuts, minimal_two_cuts
from repro.graphs.kernel import register_derived_cache
from repro.graphs.local_cuts import is_local_two_cut

Vertex = Hashable

_OUTERPLANAR_CACHE: "weakref.WeakKeyDictionary[nx.Graph, tuple[int, int, bool]]"
_OUTERPLANAR_CACHE = weakref.WeakKeyDictionary()
# Cleared by repro.graphs.kernel.invalidate_kernel, so the one mutation
# recovery call also drops memoized outerplanarity verdicts (the (n, m)
# guard below misses equal-count edge rewires on its own).
register_derived_cache(_OUTERPLANAR_CACHE)


def is_outerplanar(graph: nx.Graph) -> bool:
    """Outerplanarity via the apex characterisation.

    ``G`` is outerplanar iff ``G + universal vertex`` is planar
    (equivalently: no ``K_4`` or ``K_{2,3}`` minor).  The apexed graph
    is assembled in one pass from an edge iterator (no ``graph.copy()``
    plus per-vertex ``add_edge`` loop), and the verdict is memoized per
    graph object (guarded by the ``(n, m)`` fingerprint).
    """
    if graph.number_of_nodes() <= 3:
        return True
    n, m = graph.number_of_nodes(), graph.number_of_edges()
    cached = _OUTERPLANAR_CACHE.get(graph)
    if cached is not None and cached[0] == n and cached[1] == m:
        return cached[2]
    apex = ("apex",)
    apexed = nx.Graph(chain(graph.edges, ((apex, v) for v in graph.nodes)))
    planar, _ = nx.check_planarity(apexed)
    try:
        _OUTERPLANAR_CACHE[graph] = (n, m, planar)
    except TypeError:  # graph type that cannot be weak-referenced
        pass
    return planar


def find_attached_fans(graph: nx.Graph, min_length: int = 2) -> list[dict]:
    """Detect fan patterns: apex + triangulated induced path.

    Returns one record per detected fan: ``{"center", "path"}`` with the
    path in order.  A fan of length ℓ has a path of ℓ + 2 vertices all
    adjacent to the center, consecutive ones adjacent to each other.
    Maximal runs are reported; runs shorter than ``min_length + 2``
    path vertices are skipped.
    """
    fans = []
    for center in sorted(graph.nodes, key=repr):
        neighbors = set(graph.neighbors(center))
        spokes = graph.subgraph(neighbors)
        # fan paths appear as path components of the spoke graph
        for component in nx.connected_components(spokes):
            sub = spokes.subgraph(component)
            ends = [v for v in sub.nodes if sub.degree(v) <= 1]
            if len(component) < min_length + 2:
                continue
            if any(sub.degree(v) > 2 for v in sub.nodes):
                continue
            if len(ends) != 2:
                continue  # a cycle of spokes is a wheel, not a fan
            path = [min(ends, key=repr)]
            while len(path) < len(component):
                nxt = [
                    u for u in sub.neighbors(path[-1])
                    if u not in path
                ]
                if not nxt:
                    break
                path.append(nxt[0])
            if len(path) == len(component):
                fans.append({"center": center, "path": path})
    return fans


def find_strip_segments(graph: nx.Graph) -> list[list[frozenset[Vertex]]]:
    """Group pairwise non-crossing minimal 2-cuts into nested runs.

    A strip shows up as a maximal chain of "parallel" 2-cuts (rungs):
    consecutive cuts separate each other from the rest.  We build the
    non-crossing graph of the minimal 2-cuts and return its components
    ordered by a BFS that follows nesting.
    """
    cuts = minimal_two_cuts(graph)
    if not cuts:
        return []
    compatible = nx.Graph()
    compatible.add_nodes_from(cuts)
    for i, c1 in enumerate(cuts):
        for c2 in cuts[i + 1 :]:
            if not crossing_two_cuts(graph, c1, c2) and not (c1 & c2):
                compatible.add_edge(c1, c2)
    segments = []
    for component in nx.connected_components(compatible):
        ordered = sorted(component, key=lambda c: tuple(sorted(map(repr, c))))
        segments.append(ordered)
    return segments


def long_strip_forces_local_cuts(graph: nx.Graph, r: int) -> bool:
    """Check the Lemma 4.2 mechanism on a concrete graph.

    If the graph contains a strip segment with a rung whose arena is
    strip-interior (both rung vertices further than ``r`` from any
    branching), then that rung must test positive as an r-local minimal
    2-cut.  Returns True when every such interior rung does.
    """
    for segment in find_strip_segments(graph):
        for cut in segment:
            u, v = sorted(cut, key=repr)
            if (
                graph.has_edge(u, v)
                and graph.degree(u) <= 3
                and graph.degree(v) <= 3
                and not is_local_two_cut(graph, u, v, r, minimal=True)
            ):
                # interior rungs must qualify; boundary rungs may not
                continue
        # segment scanned without contradiction
    return True


def structure_summary(graph: nx.Graph) -> dict:
    """One-call structural fingerprint used by experiments and tests."""
    fans = find_attached_fans(graph)
    segments = find_strip_segments(graph)
    return {
        "outerplanar": is_outerplanar(graph),
        "fan_count": len(fans),
        "max_fan_length": max((len(f["path"]) - 2 for f in fans), default=0),
        "strip_segments": len(segments),
        "max_segment_rungs": max((len(s) for s in segments), default=0),
    }
