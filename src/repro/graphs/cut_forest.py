"""Interesting 2-cut forests (Section 5.3) and Proposition 5.8's rules.

The proof of Lemma 3.3 organises interesting 2-cuts into at most three
*pairwise non-crossing* families ``P_1, P_2, P_3`` — selected per SPQR
node, with an explicit case analysis on cycle (C-)nodes — and then
arranges each family into a forest ordered by nesting, along which the
charging argument walks.  This module implements both halves:

* :func:`cycle_node_families` — the verbatim case analysis (the seven
  bullets of Section 5.3) assigning the chosen cuts of a cycle node to
  ``P_1``/``P_2``/``P_3``;
* :func:`nesting_forest` — the forest of a non-crossing cut family: a
  cut is the child of the minimal cut that separates it from the root
  side (the laminar order the charging argument uses);
* :func:`displayed_vertices` — the vertices displayed by a forest
  (Corollary 5.9 charges each displayed vertex through its forest).
"""

from __future__ import annotations

from typing import Hashable, Sequence

import networkx as nx

from repro.graphs.cuts import components_after_removal, crossing_two_cuts

Vertex = Hashable


def cycle_node_families(
    k: int, virtual_edges: Sequence[tuple[int, int]] = ()
) -> dict[str, list[frozenset[int]]]:
    """Proposition 5.8's cut selection for a cycle node ``v_0 … v_{k−1}``.

    ``virtual_edges`` are index pairs that are virtual in the skeleton.
    Returns the families as index-pair sets.  Cases follow the paper's
    enumeration; all virtual-edge endpoint pairs additionally go to
    ``P_1``.
    """
    if k < 3:
        raise ValueError("cycle nodes have at least 3 vertices")
    p1: list[frozenset[int]] = []
    p2: list[frozenset[int]] = []
    p3: list[frozenset[int]] = []

    virtuals = [tuple(sorted((a % k, b % k))) for a, b in virtual_edges]
    for a, b in virtuals:
        p1.append(frozenset({a, b}))

    def pair(i: int, j: int) -> frozenset[int]:
        return frozenset({i % k, j % k})

    if k >= 8 and k % 2 == 0:
        # P1: {v_0, v_{k-3}}, {v_1, v_{k-4}}, …, {v_{k/2-3}, v_{k/2}}.
        i, j = 0, k - 3
        while i <= k // 2 - 3:
            p1.append(pair(i, j))
            i, j = i + 1, j - 1
        p2.append(pair(k // 2 - 2, k - 1))
        p2.append(pair(k // 2 - 1, k - 2))
    elif k >= 8:  # odd
        half = (k - 1) // 2
        i, j = 0, k - 3
        while i <= half - 3:
            p1.append(pair(i, j))
            i, j = i + 1, j - 1
        p1.append(pair(half - 3, half))  # the paper's extra odd cut
        p2.append(pair(half - 2, k - 1))
        p2.append(pair(half - 1, k - 2))
    elif k == 7:
        p1.extend([pair(0, 3), pair(0, 4)])
        p2.append(pair(1, 5))
        p3.append(pair(2, 6))
    elif k == 6:
        p1.append(pair(0, 3))
        p2.append(pair(1, 4))
        p3.append(pair(2, 5))
    elif virtuals:
        # k <= 5 with virtual edges: paper cases 5–7, anchored at the
        # lexicographically first virtual edge rotated to (0, 1).
        if len(virtuals) == 1 and k == 5:
            p1.append(pair(0, 2))
            p2.append(pair(1, 4))
        elif len(virtuals) >= 2:
            for i in range(2, k - 1):
                p1.append(pair(0, i))
            if k == 5:
                p2.append(pair(1, k - 1))
    return {"P1": _dedup(p1), "P2": _dedup(p2), "P3": _dedup(p3)}


def _dedup(cuts: list[frozenset[int]]) -> list[frozenset[int]]:
    seen: set[frozenset[int]] = set()
    out = []
    for cut in cuts:
        if cut not in seen and len(cut) == 2:
            seen.add(cut)
            out.append(cut)
    return out


def indices_cross(k: int, c1: frozenset[int], c2: frozenset[int]) -> bool:
    """Do two vertex-index pairs interleave around a k-cycle?"""
    if c1 & c2:
        return False
    a, b = sorted(c1)
    c, d = sorted(c2)
    inside_c = a < c < b
    inside_d = a < d < b
    return inside_c != inside_d


def families_noncrossing_on_cycle(k: int, families: dict[str, list[frozenset[int]]]) -> bool:
    """Verify the Proposition 5.8 guarantee for one cycle node."""
    for cuts in families.values():
        for i, c1 in enumerate(cuts):
            for c2 in cuts[i + 1 :]:
                if indices_cross(k, c1, c2):
                    return False
    return True


def covered_indices(families: dict[str, list[frozenset[int]]]) -> set[int]:
    out: set[int] = set()
    for cuts in families.values():
        for cut in cuts:
            out |= set(cut)
    return out


def nesting_forest(
    graph: nx.Graph, cuts: Sequence[frozenset[Vertex]]
) -> nx.DiGraph:
    """Arrange pairwise non-crossing 2-cuts into their nesting forest.

    ``c'`` is a descendant of ``c`` when both vertices of ``c'`` lie in
    one component of ``G − c`` that does not contain the (deterministic)
    root-side anchor — the "below" relation the charging argument walks.
    The parent of ``c'`` is its minimal ancestor.  Returns a DiGraph
    with edges parent → child; roots have in-degree 0.
    """
    for i, c1 in enumerate(cuts):
        for c2 in list(cuts)[i + 1 :]:
            if crossing_two_cuts(graph, c1, c2):
                raise ValueError(f"cuts {set(c1)} and {set(c2)} cross")

    anchor = min(graph.nodes, key=repr)

    def below(inner: frozenset[Vertex], outer: frozenset[Vertex]) -> bool:
        """Is `inner` strictly inside a non-anchor component of G − outer?"""
        if inner == outer:
            return False
        for component in components_after_removal(graph, outer):
            if anchor in component:
                continue
            if (
                set(inner) - set(outer)
                and set(inner) <= component | set(outer)
                and set(inner) & component
            ):
                return True
        return False

    forest = nx.DiGraph()
    forest.add_nodes_from(cuts)
    for child in cuts:
        ancestors = [c for c in cuts if c != child and below(child, c)]
        if not ancestors:
            continue
        # the parent is the ancestor that is itself below all others
        parent = ancestors[0]
        for candidate in ancestors[1:]:
            if below(candidate, parent):
                parent = candidate
        forest.add_edge(parent, child)
    return forest


def displayed_vertices(forest: nx.DiGraph) -> set[Vertex]:
    """All vertices appearing in some cut of the forest (Corollary 5.9)."""
    out: set[Vertex] = set()
    for cut in forest.nodes:
        out |= set(cut)
    return out


def forest_depth(forest: nx.DiGraph) -> int:
    """Longest root-to-leaf chain (the charging walk's reach)."""
    if forest.number_of_nodes() == 0:
        return 0
    return nx.dag_longest_path_length(forest) + 1
