"""Registry of named graph families for the experiment harness.

A :class:`Family` bundles a human-readable name, the class it belongs to
(the Table 1 row), a deterministic generator indexed by size, and the
``t`` for which the family is ``K_{2,t}``-minor-free.  The registry lets
benchmarks iterate "one suite per Table 1 row" declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import networkx as nx

from repro.graphs import generators
from repro.graphs.ding import fan_flower
from repro.graphs.random_families import (
    random_cactus,
    random_ding_augmentation,
    random_outerplanar,
    random_tree,
)


@dataclass(frozen=True)
class Family:
    """A named distribution of graphs, indexed by a size parameter."""

    name: str
    table_row: str
    minor_free_t: int
    """The family is K_{2,t}-minor-free for this t (and larger)."""
    make: Callable[[int, int], nx.Graph]
    """``make(size, seed) -> graph``."""


def _trees(size: int, seed: int) -> nx.Graph:
    return random_tree(size, seed)


def _paths(size: int, seed: int) -> nx.Graph:
    return generators.path(size)


def _cycles(size: int, seed: int) -> nx.Graph:
    return generators.cycle(max(3, size))


def _outerplanar(size: int, seed: int) -> nx.Graph:
    return random_outerplanar(max(3, size), seed)


def _fans(size: int, seed: int) -> nx.Graph:
    return generators.fan(max(1, size - 1))


def _cacti(size: int, seed: int) -> nx.Graph:
    return random_cactus(max(1, size // 4), 6, seed)


def _ladders(size: int, seed: int) -> nx.Graph:
    return generators.ladder(max(1, size // 2))


def _stars(size: int, seed: int) -> nx.Graph:
    return generators.star(size)

def _spiders(size: int, seed: int) -> nx.Graph:
    return generators.spider(max(1, size // 4), 4)


def _ding(size: int, seed: int) -> nx.Graph:
    return random_ding_augmentation(max(2, size // 8), max(1, size // 10), seed)


def _fan_flowers(size: int, seed: int) -> nx.Graph:
    return fan_flower(max(1, size // 8), 5)


def _clique_pendants(size: int, seed: int) -> nx.Graph:
    return generators.clique_with_pendants(max(2, size // 2))


FAMILIES: dict[str, Family] = {
    family.name: family
    for family in [
        Family("path", "trees (K_3)", 2, _paths),
        Family("tree", "trees (K_3)", 2, _trees),
        Family("star", "K_{1,t}-minor-free", 2, _stars),
        Family("spider", "trees (K_3)", 2, _spiders),
        Family("cycle", "outerplanar (K_4, K_{2,3})", 3, _cycles),
        Family("outerplanar", "outerplanar (K_4, K_{2,3})", 3, _outerplanar),
        Family("fan", "outerplanar (K_4, K_{2,3})", 3, _fans),
        Family("cactus", "outerplanar (K_4, K_{2,3})", 3, _cacti),
        Family("ladder", "K_{2,t}-minor-free", 3, _ladders),
        Family("ding", "K_{2,t}-minor-free", 8, _ding),
        Family("fan_flower", "K_{2,t}-minor-free", 4, _fan_flowers),
        # clique_with_pendants on k vertices is K_{2,k+?}-rich; used as the
        # Section 4 motivating example, t tracks the clique size via `size`.
        Family("clique_pendants", "Section 4 example", 0, _clique_pendants),
    ]
}


def get_family(name: str) -> Family:
    """Look up a family by name, with a helpful error on typos."""
    try:
        return FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise KeyError(f"unknown family {name!r}; known: {known}") from None


def table1_rows() -> dict[str, list[Family]]:
    """Group families by the Table 1 row they exercise."""
    rows: dict[str, list[Family]] = {}
    for family in FAMILIES.values():
        rows.setdefault(family.table_row, []).append(family)
    return rows
