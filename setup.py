"""Packaging for the repro distribution (src/ layout).

``install_requires`` names the three runtime dependencies the package
imports unconditionally: networkx (graph construction), numpy (the
packed kernel backend in :mod:`repro.graphs.packed` plus the CSR
ingestion paths), and scipy (the MILP/LP exact solvers and bounds).
Test-only tooling (pytest, hypothesis, ruff) stays in
``requirements-ci.txt``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-bonamy-gpw25",
    version="1.1.0",
    description=(
        "Reproduction of distributed dominating-set algorithms and "
        "structural bounds (Bonamy et al., PODC 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "networkx",
        "numpy",
        "scipy",
    ],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
